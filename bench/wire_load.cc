/**
 * @file
 * Wire-protocol load generator: the same closed-loop TopK workload
 * driven two ways against identical services -- through an in-process
 * Session, and through a RimeClient talking to a RimeServer over
 * loopback TCP -- so the wire path's overhead is measured against the
 * only honest baseline, itself without the socket.
 *
 * Three phases, all reported in BENCH_wire.json:
 *
 *  1. Depth sweep: pipeline depths 1/2/4/8 over the wire, reporting
 *     aggregate wall-clock op throughput and the p50/p99 RTT each
 *     request saw (submit to future-ready, queueing included).
 *
 *  2. Baseline ratio: wire throughput at depth 8 over in-process
 *     throughput at depth 8.  Target >= 0.85x on hosts with spare
 *     cores -- with batched submits on both sides
 *     (Session::submitBatch in process, RimeClient::submitBatch +
 *     the server's whole-read hand-off and writev response
 *     coalescing over the wire), the framed protocol, the event
 *     loop, and two thread hops may cost at most 15% of the
 *     in-process rate on loopback.  On a single-core host the wire
 *     turnaround cannot overlap shard execution, so the gate drops
 *     to >= 0.50x (see the phase-2 comment).  A batch-size sweep
 *     (service batchOps 1 vs 32) is emitted alongside, and every
 *     run reports its realized completion group size (avg batch).
 *
 *  3. Disconnect chaos: the same workload while the client tears its
 *     connection down at fixed op counts and reconnects (sessions
 *     reopened, range re-armed).  Transport errors are expected and
 *     counted; *protocol* errors (corrupt frames, undecodable
 *     messages) must stay exactly 0 -- disconnects at arbitrary
 *     byte positions must never desynchronize the framing.
 *
 *  4. Multi-client fairness: M concurrent clients, each with its own
 *     connection, session, and range, running the same closed loop
 *     against one server.  The event loop must not starve anyone:
 *     the worst per-client p99 RTT must stay under 2x the median
 *     per-client p99.
 *
 * Wall-clock numbers are host-dependent, like every wall column in
 * this tree; the JSON gate checks the *ratio* and the error counters,
 * not absolute rates.  RIME_BENCH_SCALE scales the op counts.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "common/logging.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "service/service.hh"

using namespace rime;
using namespace rime::bench;
using namespace rime::service;
using namespace rime::net;

namespace
{

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kKeysPerRange = 4096;
constexpr std::uint64_t kTopK = 64;
constexpr std::size_t kMaxDepth = 8;

double
percentile(std::vector<double> &samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(samples.size() - 1));
    return samples[idx];
}

struct RunResult
{
    std::uint64_t served = 0;
    std::uint64_t rejected = 0;
    double wallMs = 0.0;
    double opsPerSec = 0.0;
    double p50Us = 0.0;
    double p99Us = 0.0;
    /**
     * Mean completions drained per window wakeup -- the realized
     * group size.  `depth` when server group completion, the wire
     * tier's response coalescing, and the client's batched refill all
     * hold together; ~1 when completions dribble back as singles.
     */
    double avgBatch = 0.0;
};

/**
 * The closed-loop core, generic over how a *batch* of requests is
 * submitted: keep `depth` TopK requests in flight until `ops`
 * responses were served; re-arm the drained range with an Init
 * whenever a TopK comes back Empty.  Rejected completions are
 * resubmitted after a yield.
 *
 * The window refills its whole deficit with ONE batched submit, and
 * after blocking on the head it sweeps every already-ready completion
 * behind it -- a server group commit completes several futures at
 * once, and draining them together makes the next refill a real
 * batch (one wire write, one shard hand-off) instead of dribbling
 * single requests.
 */
template <typename SubmitBatchFn>
RunResult
runClosedLoop(SubmitBatchFn &&submitBatch, Addr start, Addr end,
              std::uint64_t ops, std::size_t depth)
{
    RunResult out;
    std::deque<std::pair<std::future<Response>, Clock::time_point>>
        window;
    std::vector<double> rttUs;
    rttUs.reserve(ops);
    const auto submitOne = [&](Request req) {
        std::vector<Request> one;
        one.push_back(std::move(req));
        return std::move(submitBatch(std::move(one)).front());
    };

    const auto t0 = Clock::now();
    std::uint64_t submitted = 0;
    std::uint64_t drains = 0, drainOps = 0;
    while (out.served < ops) {
        const std::uint64_t want = ops + out.rejected;
        if (window.size() < depth && submitted < want) {
            const std::size_t n = std::min<std::size_t>(
                depth - window.size(),
                static_cast<std::size_t>(want - submitted));
            std::vector<Request> batch(n);
            for (Request &r : batch) {
                r.kind = RequestKind::TopK;
                r.start = start;
                r.end = end;
                r.count = kTopK;
            }
            const auto at = Clock::now();
            auto futures = submitBatch(std::move(batch));
            for (auto &f : futures)
                window.emplace_back(std::move(f), at);
            submitted += n;
        }
        std::vector<std::pair<Response, Clock::time_point>> done;
        {
            auto [future, at] = std::move(window.front());
            window.pop_front();
            done.emplace_back(future.get(), at);
        }
        while (!window.empty() &&
               window.front().first.wait_for(
                   std::chrono::seconds(0)) ==
                   std::future_status::ready) {
            done.emplace_back(window.front().first.get(),
                              window.front().second);
            window.pop_front();
        }
        ++drains;
        drainOps += done.size();
        for (auto &[resp, at] : done) {
            rttUs.push_back(std::chrono::duration<double, std::micro>(
                                Clock::now() - at)
                                .count());
            if (resp.status == ServiceStatus::Rejected) {
                ++out.rejected;
                std::this_thread::yield();
                continue;
            }
            if (resp.status == ServiceStatus::Empty || resp.ok()) {
                if (resp.status == ServiceStatus::Empty ||
                    resp.items.size() < kTopK) {
                    // Range drained: re-arm before counting on.
                    Request init;
                    init.kind = RequestKind::Init;
                    init.start = start;
                    init.end = end;
                    init.mode = KeyMode::UnsignedFixed;
                    init.wordBits = 32;
                    const Response ir =
                        submitOne(std::move(init)).get();
                    if (!ir.ok() &&
                        ir.status != ServiceStatus::Rejected) {
                        fatal("wire_load: re-init failed with %s",
                              serviceStatusName(ir.status));
                    }
                }
                ++out.served;
                continue;
            }
            fatal("wire_load: topK failed with %s",
                  serviceStatusName(resp.status));
        }
    }
    const auto t1 = Clock::now();
    out.avgBatch = drains
        ? static_cast<double>(drainOps) / static_cast<double>(drains)
        : 0.0;
    out.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    out.opsPerSec = out.wallMs > 0
        ? static_cast<double>(out.served) / (out.wallMs / 1e3)
        : 0.0;
    out.p50Us = percentile(rttUs, 0.50);
    out.p99Us = percentile(rttUs, 0.99);
    return out;
}

/** Malloc + store + init one range on an in-process session. */
std::pair<Addr, Addr>
armRange(Session &s)
{
    const std::uint64_t bytes = kKeysPerRange * sizeof(std::uint32_t);
    const Response m = s.malloc(bytes).get();
    if (!m.ok())
        fatal("wire_load: malloc failed");
    if (!s.storeArray(m.addr, randomRaws(kKeysPerRange, 7)).get().ok())
        fatal("wire_load: store failed");
    if (!s.init(m.addr, m.addr + bytes, KeyMode::UnsignedFixed)
             .get()
             .ok())
        fatal("wire_load: init failed");
    return {m.addr, m.addr + bytes};
}

/** The same arming through a RimeClient. */
std::pair<Addr, Addr>
armRange(RimeClient &client, std::uint64_t session)
{
    const std::uint64_t bytes = kKeysPerRange * sizeof(std::uint32_t);
    Request r;
    r.kind = RequestKind::Malloc;
    r.bytes = bytes;
    const Response m = client.call(session, std::move(r));
    if (!m.ok())
        fatal("wire_load: remote malloc failed");
    r = Request();
    r.kind = RequestKind::StoreArray;
    r.start = m.addr;
    r.values = randomRaws(kKeysPerRange, 7);
    if (!client.call(session, std::move(r)).ok())
        fatal("wire_load: remote store failed");
    r = Request();
    r.kind = RequestKind::Init;
    r.start = m.addr;
    r.end = m.addr + bytes;
    r.mode = KeyMode::UnsignedFixed;
    r.wordBits = 32;
    if (!client.call(session, std::move(r)).ok())
        fatal("wire_load: remote init failed");
    return {m.addr, m.addr + bytes};
}

ServiceConfig
benchService()
{
    ServiceConfig cfg;
    cfg.shards = 1;
    cfg.library = tableOneRime();
    cfg.scheduler.queueCapacity = 64;
    return cfg;
}

RunResult
runInProcess(std::uint64_t ops, std::size_t depth)
{
    RimeService svc(benchService());
    SessionConfig sc;
    sc.tenant = "inproc";
    sc.maxInFlight = kMaxDepth + 2;
    auto s = svc.openSession(sc);
    const auto [start, end] = armRange(*s);
    RunResult r = runClosedLoop(
        [&](std::vector<Request> reqs) {
            return s->submitBatch(std::move(reqs), nullptr);
        },
        start, end, ops, depth);
    s->close();
    return r;
}

RunResult
runOverWire(std::uint64_t ops, std::size_t depth,
            std::size_t batch_ops = SchedulerConfig{}.batchOps)
{
    ServiceConfig cfg = benchService();
    cfg.scheduler.batchOps = batch_ops;
    RimeService svc(std::move(cfg));
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    if (!server.start())
        fatal("wire_load: server failed to start");
    RimeClient client(
        {.endpoint =
             "tcp:127.0.0.1:" + std::to_string(server.tcpPort())});
    if (!client.connect())
        fatal("wire_load: client failed to connect");
    const std::uint64_t session =
        client.openSession("wire", 1, kMaxDepth + 2);
    if (session == 0)
        fatal("wire_load: remote open failed");
    const auto [start, end] = armRange(client, session);
    RunResult r = runClosedLoop(
        [&](std::vector<Request> reqs) {
            return client.submitBatch(session, std::move(reqs));
        },
        start, end, ops, depth);
    if (client.protocolErrors() != 0)
        fatal("wire_load: %llu protocol errors on a clean run",
              static_cast<unsigned long long>(
                  client.protocolErrors()));
    client.closeSession(session);
    client.disconnect();
    server.stop();
    return r;
}

struct ChaosResult
{
    std::uint64_t served = 0;
    std::uint64_t failed = 0; ///< futures completed Closed/Rejected
    std::uint64_t disconnects = 0;
    std::uint64_t reconnects = 0;
    std::uint64_t transportErrors = 0;
    std::uint64_t protocolErrors = 0;
    std::uint64_t serverProtocolErrors = 0;
};

/**
 * Depth-8 pipelining under forced disconnects: every `opsPerCut`
 * served ops the client drops the connection cold (in-flight futures
 * and all), reconnects, reopens its session and re-arms the range.
 */
ChaosResult
runChaos(std::uint64_t ops, std::uint64_t ops_per_cut)
{
    RimeService svc(benchService());
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    if (!server.start())
        fatal("wire_load: chaos server failed to start");
    ClientConfig ccfg;
    ccfg.endpoint = "tcp:127.0.0.1:" + std::to_string(server.tcpPort());
    ccfg.backoffBaseMs = 1;
    RimeClient client(ccfg);
    if (!client.connect())
        fatal("wire_load: chaos client failed to connect");

    ChaosResult out;
    std::uint64_t session = 0;
    Addr start = 0, end = 0;
    std::uint64_t sinceCut = 0;
    std::deque<std::future<Response>> window;

    const auto rearm = [&] {
        session = client.openSession("chaos", 1, kMaxDepth + 2);
        if (session == 0)
            fatal("wire_load: chaos reopen failed");
        const auto range = armRange(client, session);
        start = range.first;
        end = range.second;
    };
    rearm();

    while (out.served < ops) {
        while (window.size() < kMaxDepth) {
            Request r;
            r.kind = RequestKind::TopK;
            r.start = start;
            r.end = end;
            r.count = kTopK;
            window.push_back(client.submit(session, std::move(r)));
        }
        Response resp = window.front().get();
        window.pop_front();
        if (resp.status == ServiceStatus::Closed) {
            // Our own cut (or its wake): drain the doomed window,
            // reconnect, reopen, re-arm.  Nothing is retried blindly.
            ++out.failed;
            while (!window.empty()) {
                (void)window.front().get();
                window.pop_front();
                ++out.failed;
            }
            if (!client.connect())
                fatal("wire_load: chaos reconnect failed");
            rearm();
            continue;
        }
        if (resp.status == ServiceStatus::Rejected) {
            ++out.failed;
            std::this_thread::yield();
            continue;
        }
        if (resp.status == ServiceStatus::Empty ||
            (resp.ok() && resp.items.size() < kTopK)) {
            Request init;
            init.kind = RequestKind::Init;
            init.start = start;
            init.end = end;
            init.mode = KeyMode::UnsignedFixed;
            init.wordBits = 32;
            (void)client.call(session, std::move(init));
            ++out.served;
        } else if (resp.ok()) {
            ++out.served;
        } else {
            fatal("wire_load: chaos topK failed with %s",
                  serviceStatusName(resp.status));
        }
        if (++sinceCut >= ops_per_cut && out.served < ops) {
            sinceCut = 0;
            ++out.disconnects;
            client.disconnect(); // futures in flight and all
        }
    }

    out.reconnects = client.reconnects();
    out.transportErrors = client.transportErrors();
    out.protocolErrors = client.protocolErrors();
    out.serverProtocolErrors = server.protocolErrors();
    client.disconnect();
    server.stop();
    return out;
}

/**
 * Phase 4: `clients` concurrent RimeClients against one server, each
 * driving the closed loop on its own session/range.  Returns the
 * per-client results; fairness is judged on the p99 spread.
 */
std::vector<RunResult>
runFairness(std::uint64_t ops, unsigned clients)
{
    RimeService svc(benchService());
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    if (!server.start())
        fatal("wire_load: fairness server failed to start");
    const std::string endpoint =
        "tcp:127.0.0.1:" + std::to_string(server.tcpPort());

    std::vector<RunResult> results(clients);
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (unsigned c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            RimeClient client({.endpoint = endpoint});
            if (!client.connect())
                fatal("wire_load: fairness client %u failed to "
                      "connect",
                      c);
            const std::uint64_t session = client.openSession(
                "fair-" + std::to_string(c), 1, kMaxDepth + 2);
            if (session == 0)
                fatal("wire_load: fairness open failed");
            const auto [start, end] = armRange(client, session);
            results[c] = runClosedLoop(
                [&](std::vector<Request> reqs) {
                    return client.submitBatch(session,
                                              std::move(reqs));
                },
                start, end, ops, /*depth=*/4);
            if (client.protocolErrors() != 0)
                fatal("wire_load: fairness client %u saw protocol "
                      "errors",
                      c);
            client.closeSession(session);
        });
    }
    for (auto &t : threads)
        t.join();
    server.stop();
    return results;
}

} // namespace

int
main()
{
    setVerbose(false);
    ::setenv("RIME_THREADS", "1", 0); // deterministic single-core sim
    const auto ops = static_cast<std::uint64_t>(
        std::max<long>(64, std::lround(512.0 * benchScale())));

    std::printf("=== wire load (TopK %llu of %llu keys, %llu ops per "
                "run) ===\n",
                static_cast<unsigned long long>(kTopK),
                static_cast<unsigned long long>(kKeysPerRange),
                static_cast<unsigned long long>(ops));

    // Phase 1: the wire depth sweep.
    std::printf("%8s %10s %12s %10s %10s %10s\n", "depth", "wall ms",
                "ops/s", "p50 us", "p99 us", "avg batch");
    std::vector<std::pair<std::size_t, RunResult>> sweep;
    for (const std::size_t depth : {1u, 2u, 4u, 8u}) {
        sweep.emplace_back(depth, runOverWire(ops, depth));
        const RunResult &r = sweep.back().second;
        std::printf("%8zu %10.1f %12.1f %10.1f %10.1f %10.2f\n",
                    depth, r.wallMs, r.opsPerSec, r.p50Us, r.p99Us,
                    r.avgBatch);
    }

    // Phase 2: the in-process baseline at the same depth.  The ratio
    // legs run 4x the ops of the sweep and take the better of two
    // runs each -- short runs on a shared host jitter enough to flip
    // any gate.
    //
    // The target is hardware-dependent and honest about it: with
    // spare cores the wire turnaround (codec on both sides, two
    // socket hops, the event loop) overlaps shard execution and must
    // cost at most 15% (>= 0.85x).  On a single core nothing
    // overlaps -- every wire byte is CPU the shard could have spent
    // executing -- so the structural ceiling is exec/(exec+turnaround)
    // and the gate drops to 0.50x.
    const std::uint64_t ratioOps = ops * 4;
    const bool singleCore = std::thread::hardware_concurrency() <= 1;
    const double ratioTarget = singleCore ? 0.50 : 0.85;
    RunResult inproc = runInProcess(ratioOps, kMaxDepth);
    const RunResult inproc2 = runInProcess(ratioOps, kMaxDepth);
    if (inproc2.opsPerSec > inproc.opsPerSec)
        inproc = inproc2;
    RunResult wire8 = runOverWire(ratioOps, kMaxDepth);
    const RunResult wire8b = runOverWire(ratioOps, kMaxDepth);
    if (wire8b.opsPerSec > wire8.opsPerSec)
        wire8 = wire8b;
    const double ratio =
        inproc.opsPerSec > 0 ? wire8.opsPerSec / inproc.opsPerSec : 0;
    std::printf("in-process depth-%zu: %.1f ops/s (p50 %.1f us, "
                "avg batch %.2f)\n",
                kMaxDepth, inproc.opsPerSec, inproc.p50Us,
                inproc.avgBatch);
    std::printf("wire depth-%zu: %.1f ops/s (avg batch %.2f)\n",
                kMaxDepth, wire8.opsPerSec, wire8.avgBatch);
    std::printf("wire/in-process throughput ratio: %.2fx %s %.2fx "
                "target%s)\n",
                ratio, ratio >= ratioTarget ? "(>=" : "(BELOW",
                ratioTarget,
                singleCore ? ", single-core host" : "");

    // Phase 2b: the service batch-size sweep at depth 8 -- how much
    // of the wire rate the whole-read hand-off buys.
    const RunResult wireB1 = runOverWire(ratioOps, kMaxDepth, 1);
    std::printf("wire depth-%zu batchOps sweep: 1 -> %.1f ops/s, "
                "32 -> %.1f ops/s\n",
                kMaxDepth, wireB1.opsPerSec, wire8.opsPerSec);

    // Phase 3: disconnect chaos at depth 8.
    const std::uint64_t chaosOps = std::max<std::uint64_t>(ops / 2, 64);
    const ChaosResult chaos = runChaos(chaosOps, chaosOps / 8);
    std::printf("chaos: %llu served, %llu failed, %llu disconnects, "
                "%llu reconnects, %llu transport errors, "
                "%llu protocol errors (%llu server-side)\n",
                static_cast<unsigned long long>(chaos.served),
                static_cast<unsigned long long>(chaos.failed),
                static_cast<unsigned long long>(chaos.disconnects),
                static_cast<unsigned long long>(chaos.reconnects),
                static_cast<unsigned long long>(chaos.transportErrors),
                static_cast<unsigned long long>(chaos.protocolErrors),
                static_cast<unsigned long long>(
                    chaos.serverProtocolErrors));

    // Phase 4: multi-client fairness.
    constexpr unsigned kFairClients = 4;
    const std::uint64_t fairOps = std::max<std::uint64_t>(ops / 2, 64);
    const std::vector<RunResult> fairness =
        runFairness(fairOps, kFairClients);
    std::vector<double> p99s;
    for (const RunResult &r : fairness)
        p99s.push_back(r.p99Us);
    std::vector<double> sorted = p99s;
    const double fairMedian = percentile(sorted, 0.5);
    const double fairMax =
        *std::max_element(p99s.begin(), p99s.end());
    const double fairSpread =
        fairMedian > 0 ? fairMax / fairMedian : 0.0;
    std::printf("fairness: %u clients x %llu ops, per-client p99",
                kFairClients,
                static_cast<unsigned long long>(fairOps));
    for (const double p : p99s)
        std::printf(" %.1f", p);
    std::printf(" us; max/median %.2fx %s\n", fairSpread,
                fairSpread < 2.0 ? "(< 2x target)"
                                 : "(ABOVE 2x target)");

    std::ostringstream arr;
    arr << "[\n";
    for (std::size_t i = 0; i < sweep.size(); ++i) {
        const auto &[depth, r] = sweep[i];
        arr << "    {\"depth\": " << depth << ", \"ops\": " << r.served
            << ", \"wall_ms\": " << r.wallMs
            << ", \"ops_per_sec\": " << r.opsPerSec
            << ", \"rejected\": " << r.rejected
            << ", \"rtt_p50_us\": " << r.p50Us
            << ", \"rtt_p99_us\": " << r.p99Us << "}"
            << (i + 1 < sweep.size() ? "," : "") << "\n";
    }
    arr << "  ]";

    std::ostringstream fairArr;
    fairArr << "[";
    for (std::size_t i = 0; i < p99s.size(); ++i)
        fairArr << p99s[i] << (i + 1 < p99s.size() ? ", " : "");
    fairArr << "]";

    std::ostringstream chaosJson;
    chaosJson << "{\"served\": " << chaos.served
              << ", \"failed\": " << chaos.failed
              << ", \"disconnects\": " << chaos.disconnects
              << ", \"reconnects\": " << chaos.reconnects
              << ", \"transport_errors\": " << chaos.transportErrors
              << ", \"protocol_errors\": " << chaos.protocolErrors
              << ", \"server_protocol_errors\": "
              << chaos.serverProtocolErrors << "}";

    BenchJson("wire_load")
        .field("keys_per_range", kKeysPerRange)
        .field("topk", kTopK)
        .field("ops", ops)
        .raw("wire_depth_sweep", arr.str())
        .field("inproc_ops_per_sec", inproc.opsPerSec)
        .field("inproc_rtt_p50_us", inproc.p50Us)
        .field("inproc_rtt_p99_us", inproc.p99Us)
        .field("inproc_avg_batch", inproc.avgBatch)
        .field("wire_ops_per_sec", wire8.opsPerSec)
        .field("wire_avg_batch", wire8.avgBatch)
        .field("wire_ratio", ratio)
        .field("single_core_host", singleCore)
        .field("ratio_target", ratioTarget)
        .field("ratio_ok", ratio >= ratioTarget)
        .raw("wire_batch_sweep",
             "[\n    {\"batch_ops\": 1, \"ops_per_sec\": " +
                 std::to_string(wireB1.opsPerSec) +
                 "},\n    {\"batch_ops\": 32, \"ops_per_sec\": " +
                 std::to_string(wire8.opsPerSec) + "}\n  ]")
        .raw("chaos", chaosJson.str())
        .field("chaos_protocol_errors_ok",
               chaos.protocolErrors == 0 &&
                   chaos.serverProtocolErrors == 0)
        .raw("fairness_p99_us", fairArr.str())
        .field("fairness_clients", kFairClients)
        .field("fairness_ops", fairOps)
        .field("fairness_p99_median_us", fairMedian)
        .field("fairness_p99_max_us", fairMax)
        .field("fairness_spread", fairSpread)
        .field("fairness_ok", fairSpread < 2.0)
        .write("BENCH_wire.json");
    return 0;
}
