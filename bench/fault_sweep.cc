/**
 * @file
 * Fault-rate sweep: sorts a 1M-key array on the bit-level model at
 * stuck-at cell rates from 0 to 1e-3, checking the produced prefix
 * against std::sort exactly and reporting the repair-pipeline
 * counters and the host-side wall-clock overhead the verify/repair
 * machinery adds.  Emits BENCH_faults.json next to the binary.
 *
 * RIME_BENCH_SCALE scales the key count and the extraction cap.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "common/logging.hh"

using namespace rime;
using namespace rime::bench;

namespace
{

struct SweepPoint
{
    double rate = 0.0;
    std::uint64_t extracted = 0;
    bool exact = true;
    std::string status = "ok";
    double wallMs = 0.0;
    double simSeconds = 0.0;
    double remaps = 0.0;
    double retires = 0.0;
    double deaths = 0.0;
    double lost = 0.0;
    double verifyMismatches = 0.0;
    double writeErrors = 0.0;
    std::uint64_t retiredBytes = 0;
};

SweepPoint
runPoint(double rate, const std::vector<std::uint64_t> &keys,
         std::uint64_t extractions)
{
    using Clock = std::chrono::steady_clock;
    SweepPoint p;
    p.rate = rate;

    LibraryConfig cfg = tableOneRime();
    cfg.device.bitLevel = true; // faults need cells to corrupt
    cfg.device.faults.seed = 1;
    cfg.device.faults.stuckAt0Rate = rate / 2;
    cfg.device.faults.stuckAt1Rate = rate / 2;
    RimeLibrary lib(cfg);

    const std::uint64_t bytes = keys.size() * sizeof(std::uint32_t);
    const auto addr = lib.rimeMalloc(bytes);
    if (!addr)
        fatal("fault sweep: allocation failed");
    lib.storeArray(*addr, keys);
    lib.rimeInit(*addr, *addr + bytes, KeyMode::UnsignedFixed, 32);

    std::vector<std::uint64_t> got;
    got.reserve(extractions);
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < extractions; ++i) {
        const RimeExtract r = lib.rimeMinChecked(*addr, *addr + bytes);
        if (!r.ok()) {
            p.status = rimeStatusName(r.status);
            break;
        }
        got.push_back(r.item.raw);
    }
    const auto t1 = Clock::now();
    p.wallMs =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    p.simSeconds = lib.nowSeconds();
    p.extracted = got.size();

    // Zero silent corruption: whatever was emitted must equal the
    // sorted prefix exactly.
    std::vector<std::uint64_t> expect(keys);
    std::sort(expect.begin(), expect.end());
    p.exact = std::equal(got.begin(), got.end(), expect.begin());

    const StatGroup stats = lib.device().aggregateStats();
    p.remaps = stats.get("faultRowRemaps");
    p.retires = stats.get("faultUnitRetires");
    p.deaths = stats.get("faultUnitDeaths");
    p.lost = stats.get("faultLostValues");
    p.verifyMismatches = stats.get("faultVerifyMismatches");
    p.writeErrors = stats.get("faultWriteErrors");
    p.retiredBytes = lib.rimeHealth().retiredBytes;
    return p;
}

} // namespace

int
main()
{
    setVerbose(false);
    const std::uint64_t n = scaledCap(1 << 20);
    const std::uint64_t extractions =
        std::min<std::uint64_t>(n, scaledCap(1 << 14));
    const auto keys = randomRaws(n, 7);

    std::printf("=== stuck-at sweep (%sM keys, %llu extractions) ===\n",
                millions(n).c_str(),
                static_cast<unsigned long long>(extractions));
    std::printf("%10s %8s %6s %12s %9s %9s %8s %8s %8s\n", "rate",
                "status", "exact", "wall ms", "remaps", "wrErrors",
                "retires", "deaths", "lost");

    std::vector<SweepPoint> points;
    for (const double rate : {0.0, 1e-6, 1e-5, 1e-4, 1e-3}) {
        points.push_back(runPoint(rate, keys, extractions));
        const SweepPoint &p = points.back();
        std::printf("%10.0e %8s %6s %12.1f %9.0f %9.0f %8.0f %8.0f "
                    "%8.0f\n", p.rate, p.status.c_str(),
                    p.exact ? "yes" : "NO", p.wallMs, p.remaps,
                    p.writeErrors, p.retires, p.deaths, p.lost);
        if (!p.exact)
            fatal("silent corruption at stuck-at rate %g", p.rate);
    }

    const double base = points.front().wallMs;
    std::ostringstream arr;
    arr << "[\n";
    for (std::size_t i = 0; i < points.size(); ++i) {
        const SweepPoint &p = points[i];
        arr << "    {\"stuck_at_rate\": " << p.rate
            << ", \"status\": \"" << p.status << "\""
            << ", \"exact\": " << (p.exact ? "true" : "false")
            << ", \"extracted\": " << p.extracted
            << ", \"wall_ms\": " << p.wallMs
            << ", \"overhead_vs_clean\": "
            << (base > 0 ? p.wallMs / base : 0.0)
            << ", \"sim_seconds\": " << p.simSeconds
            << ", \"row_remaps\": " << p.remaps
            << ", \"write_errors\": " << p.writeErrors
            << ", \"unit_retires\": " << p.retires
            << ", \"unit_deaths\": " << p.deaths
            << ", \"lost_values\": " << p.lost
            << ", \"verify_mismatches\": " << p.verifyMismatches
            << ", \"retired_bytes\": " << p.retiredBytes << "}"
            << (i + 1 < points.size() ? "," : "") << "\n";
    }
    arr << "  ]";
    BenchJson("fault_sweep")
        .field("keys", n)
        .field("extractions", extractions)
        .raw("points", arr.str())
        .write("BENCH_faults.json");
    writeStatsJson("faults");
    return 0;
}
