/**
 * @file
 * Regenerates Figure 2: sort throughput (MKps) vs data size under
 * (a) unlimited bandwidth, (b) in-package HBM, (c) off-chip DDR4,
 * with 64 cores.  The paper's qualitative claim: R/S leads with
 * unlimited bandwidth but loses its lead to Q/S on the realistic
 * memories.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "perfmodel/baseline.hh"

using namespace rime;
using namespace rime::bench;

int
main()
{
    setVerbose(false);
    sort::SortModel::Config cfg;
    cfg.sampleCap = scaledCap(1 << 21);
    sort::SortModel sorts(cfg);
    perfmodel::BaselinePerfModel model;
    const unsigned cores = 64;
    const auto sizes = paperSizes();
    const sort::Algorithm algos[] = {sort::Algorithm::Mergesort,
                                     sort::Algorithm::Quicksort,
                                     sort::Algorithm::Radixsort};
    const SystemKind systems[] = {SystemKind::Unlimited,
                                  SystemKind::InPackageHbm,
                                  SystemKind::OffChipDdr4};

    for (const auto system : systems) {
        std::printf("=== Figure 2: throughput (MKps), %s ===\n",
                    systemName(system));
        std::vector<std::string> cols;
        for (const auto n : sizes)
            cols.push_back(millions(n) + "M");
        printHeader("algo", cols);
        for (const auto algo : algos) {
            std::vector<double> row;
            for (const auto n : sizes) {
                row.push_back(model.sortThroughputMKps(
                    sorts, algo, n, cores, system));
            }
            printRow(sort::algorithmName(algo), row);
        }
        std::printf("\n");
    }

    // The headline crossover check.
    const std::uint64_t big = 65 * 1024 * 1024;
    const double rs_unl = model.sortThroughputMKps(
        sorts, sort::Algorithm::Radixsort, big, cores,
        SystemKind::Unlimited);
    const double qs_unl = model.sortThroughputMKps(
        sorts, sort::Algorithm::Quicksort, big, cores,
        SystemKind::Unlimited);
    const double rs_ddr = model.sortThroughputMKps(
        sorts, sort::Algorithm::Radixsort, big, cores,
        SystemKind::OffChipDdr4);
    const double qs_ddr = model.sortThroughputMKps(
        sorts, sort::Algorithm::Quicksort, big, cores,
        SystemKind::OffChipDdr4);
    std::printf("crossover check (65M): unlimited R/S %.2f %s "
                "Q/S %.2f; DDR4 R/S %.2f %s Q/S %.2f\n",
                rs_unl, rs_unl > qs_unl ? ">" : "<=", qs_unl,
                rs_ddr, rs_ddr < qs_ddr ? "<" : ">=", qs_ddr);
    writeStatsJson("fig02");
    return 0;
}
