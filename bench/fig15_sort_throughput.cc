/**
 * @file
 * Regenerates Figure 15: throughput (MKps) of mergesort, quicksort,
 * radixsort, and heapsort on the off-chip DDR4 and in-package HBM
 * baselines versus RIME, for 0.5-65M keys, plus the paper's average
 * speedup summary (paper: RIME gains 30.2x M/S, 12.4x Q/S, 50.7x
 * R/S, 26x H/S over off-chip; HBM gains 2.4/2.3/8.1/1.9x).
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "perfmodel/baseline.hh"

using namespace rime;
using namespace rime::bench;

int
main()
{
    setVerbose(false);
    std::printf("=== Figure 15: sorting throughput (MKps) ===\n");

    sort::SortModel::Config sort_cfg;
    sort_cfg.sampleCap = scaledCap(1 << 21);
    sort::SortModel sorts(sort_cfg);
    perfmodel::BaselinePerfModel model;
    const unsigned cores = 64;
    const auto sizes = paperSizes();
    const std::uint64_t rime_cap = scaledCap(4 << 20);

    std::map<int, std::map<std::uint64_t, double>> ddr;
    std::map<int, std::map<std::uint64_t, double>> hbm;
    std::map<std::uint64_t, double> rime;

    for (const auto n : sizes) {
        for (const auto algo : sort::allAlgorithms) {
            ddr[static_cast<int>(algo)][n] = model.sortThroughputMKps(
                sorts, algo, n, cores, SystemKind::OffChipDdr4);
            hbm[static_cast<int>(algo)][n] = model.sortThroughputMKps(
                sorts, algo, n, cores, SystemKind::InPackageHbm);
        }
        rime[n] = rimeSortThroughputMKps(n, rime_cap);
    }

    std::vector<std::string> cols{"system"};
    for (const auto n : sizes)
        cols.push_back(millions(n) + "M");
    printHeader("algo", {cols.begin() + 1, cols.end()});

    for (const char *system : {"ddr4", "hbm"}) {
        for (const auto algo : sort::allAlgorithms) {
            auto &table = system == std::string("ddr4") ? ddr : hbm;
            std::vector<double> row;
            for (const auto n : sizes)
                row.push_back(table[static_cast<int>(algo)][n]);
            printRow(std::string(sort::algorithmName(algo)) + " " +
                     system, row);
        }
    }
    {
        std::vector<double> row;
        for (const auto n : sizes)
            row.push_back(rime[n]);
        printRow("RIME", row);
    }

    std::printf("\n--- average speedups across sizes "
                "(paper: HBM 2.4/2.3/8.1/1.9x, "
                "RIME 30.2/12.4/50.7/26x) ---\n");
    printHeader("algo", {"hbm/ddr4", "rime/ddr4"});
    for (const auto algo : sort::allAlgorithms) {
        double hbm_gain = 0;
        double rime_gain = 0;
        for (const auto n : sizes) {
            const double d = ddr[static_cast<int>(algo)][n];
            hbm_gain += hbm[static_cast<int>(algo)][n] / d;
            rime_gain += rime[n] / d;
        }
        printRow(sort::algorithmName(algo),
                 {hbm_gain / sizes.size(), rime_gain / sizes.size()});
    }
    writeStatsJson("fig15");
    return 0;
}
