/**
 * @file
 * Regenerates Figure 15: throughput (MKps) of mergesort, quicksort,
 * radixsort, and heapsort on the off-chip DDR4 and in-package HBM
 * baselines versus RIME, for 0.5-65M keys, plus the paper's average
 * speedup summary (paper: RIME gains 30.2x M/S, 12.4x Q/S, 50.7x
 * R/S, 26x H/S over off-chip; HBM gains 2.4/2.3/8.1/1.9x).
 */

#include <cstdio>
#include <map>

#include "bench/bench_util.hh"
#include "perfmodel/baseline.hh"

using namespace rime;
using namespace rime::bench;

int
main()
{
    setVerbose(false);
    std::printf("=== Figure 15: sorting throughput (MKps) ===\n");

    sort::SortModel::Config sort_cfg;
    sort_cfg.sampleCap = scaledCap(1 << 21);
    sort::SortModel sorts(sort_cfg);
    perfmodel::BaselinePerfModel model;
    const unsigned cores = 64;
    const auto sizes = paperSizes();
    const std::uint64_t rime_cap = scaledCap(4 << 20);

    std::map<int, std::map<std::uint64_t, double>> ddr;
    std::map<int, std::map<std::uint64_t, double>> hbm;
    std::map<std::uint64_t, double> rime;

    // Phase 1, parallel across configurations: one sampled-simulation
    // profile per (algo, n) -- shared below by the DDR4 *and* HBM
    // derivations instead of being measured twice -- plus one RIME
    // execution per size, with stats captured for ordered publishing.
    struct ProfilePoint
    {
        sort::Algorithm algo;
        std::uint64_t n;
    };
    std::vector<ProfilePoint> points;
    for (const auto n : sizes) {
        for (const auto algo : sort::allAlgorithms)
            points.push_back({algo, n});
    }
    const auto profiles = sweepParallel(
        static_cast<unsigned>(points.size()), [&](unsigned i) {
            return sorts.profile(points[i].algo, points[i].n, cores);
        });
    const auto rime_points = sweepParallel(
        static_cast<unsigned>(sizes.size()), [&](unsigned i) {
            return rimeSortThroughputPoint(sizes[i], rime_cap);
        });

    // Phase 2, serial: price each profile on both baseline systems
    // (the perf model mutates its probe cache) and publish the RIME
    // stats in size order, as a serial sweep would.
    for (std::size_t i = 0; i < points.size(); ++i) {
        const int algo = static_cast<int>(points[i].algo);
        const std::uint64_t n = points[i].n;
        ddr[algo][n] = model.sortThroughputMKps(
            profiles[i], points[i].algo, n, cores,
            SystemKind::OffChipDdr4);
        hbm[algo][n] = model.sortThroughputMKps(
            profiles[i], points[i].algo, n, cores,
            SystemKind::InPackageHbm);
    }
    for (std::size_t i = 0; i < sizes.size(); ++i)
        rime[sizes[i]] = rime_points[i].mkps;
    publishSweepStats(rime_points);

    std::vector<std::string> cols{"system"};
    for (const auto n : sizes)
        cols.push_back(millions(n) + "M");
    printHeader("algo", {cols.begin() + 1, cols.end()});

    for (const char *system : {"ddr4", "hbm"}) {
        for (const auto algo : sort::allAlgorithms) {
            auto &table = system == std::string("ddr4") ? ddr : hbm;
            std::vector<double> row;
            for (const auto n : sizes)
                row.push_back(table[static_cast<int>(algo)][n]);
            printRow(std::string(sort::algorithmName(algo)) + " " +
                     system, row);
        }
    }
    {
        std::vector<double> row;
        for (const auto n : sizes)
            row.push_back(rime[n]);
        printRow("RIME", row);
    }

    std::printf("\n--- average speedups across sizes "
                "(paper: HBM 2.4/2.3/8.1/1.9x, "
                "RIME 30.2/12.4/50.7/26x) ---\n");
    printHeader("algo", {"hbm/ddr4", "rime/ddr4"});
    for (const auto algo : sort::allAlgorithms) {
        double hbm_gain = 0;
        double rime_gain = 0;
        for (const auto n : sizes) {
            const double d = ddr[static_cast<int>(algo)][n];
            hbm_gain += hbm[static_cast<int>(algo)][n] / d;
            rime_gain += rime[n] / d;
        }
        printRow(sort::algorithmName(algo),
                 {hbm_gain / sizes.size(), rime_gain / sizes.size()});
    }
    writeStatsJson("fig15");
    return 0;
}
