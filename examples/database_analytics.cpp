/**
 * @file
 * Database analytics scenario: a key-value fact table is grouped
 * and aggregated in-situ (GroupBy), then two key columns are joined
 * (MergeJoin) -- the section VI-C database operators, with the CPU
 * reference checking every result.
 */

#include <cstdio>

#include "sort/access_sink.hh"
#include "workloads/kv.hh"

int
main()
{
    using namespace rime;
    using namespace rime::workloads;

    RimeLibrary rime{LibraryConfig{}};

    // --- GroupBy: 500k sales records across 1000 store ids.
    const auto table = randomTable(500000, 1000, 42);
    const auto groups = groupByRime(rime, table);
    std::printf("GroupBy: %zu rows -> %zu groups\n", table.size(),
                groups.groups.size());
    std::printf("  first group: key=%u count=%llu sum=%llu\n",
                groups.groups.front().key,
                static_cast<unsigned long long>(
                    groups.groups.front().count),
                static_cast<unsigned long long>(
                    groups.groups.front().sum));

    // Validate against the CPU reference implementation.
    sort::NullSink sink;
    const auto reference = groupByCpu(table, sink);
    if (reference.groups.size() != groups.groups.size()) {
        std::fprintf(stderr, "GroupBy mismatch!\n");
        return 1;
    }
    std::printf("  matches the CPU reference (%zu groups)\n",
                reference.groups.size());

    // --- MergeJoin: orders x customers key columns.
    Rng rng(7);
    std::vector<std::uint32_t> orders(200000);
    std::vector<std::uint32_t> customers(50000);
    for (auto &k : orders)
        k = static_cast<std::uint32_t>(rng.below(100000));
    for (auto &k : customers)
        k = static_cast<std::uint32_t>(rng.below(100000));
    const auto joined = mergeJoinRime(rime, orders, customers);
    const auto joined_ref = mergeJoinCpu(orders, customers, sink);
    std::printf("MergeJoin: %zu x %zu keys -> %zu matches "
                "(reference %zu)\n",
                orders.size(), customers.size(), joined.keys.size(),
                joined_ref.keys.size());
    std::printf("simulated time: %.3f ms\n", rime.nowSeconds() * 1e3);
    return joined.keys == joined_ref.keys ? 0 : 1;
}
