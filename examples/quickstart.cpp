/**
 * @file
 * Quickstart: the paper's Figure-12 usage pattern.
 *
 * Allocate a RIME region, store data with ordinary writes,
 * initialize it for ranking, and read back the 100 smallest values
 * with rime_min -- each access returns the next minimum straight
 * from the memory arrays, no data ever crossing the bus for
 * comparison.
 */

#include <cstdio>

#include "rime/api.hh"
#include "common/rng.hh"

int
main()
{
    using namespace rime;

    // A Table-I RIME system: one DDR4 channel of eight 1 Gb chips.
    RimeLibrary rime{LibraryConfig{}};

    // Example: find the 100 smallest of 2M 32-bit values.
    const std::uint64_t n = 2 * 1024 * 1024;
    Rng rng(2026);
    std::vector<std::uint64_t> data(n);
    for (auto &v : data)
        v = rng() & 0xFFFFFFFF;

    // rime_malloc: contiguous physical space via the driver.
    const auto start = rime.rimeMalloc(n * 4);
    if (!start) {
        std::fprintf(stderr, "rime_malloc failed\n");
        return 1;
    }
    const Addr end = *start + n * 4;

    // Configure the region and load the data (ordinary stores).
    rime.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    rime.storeArray(*start, data);

    // Arm the select vectors for a new ranking operation.
    rime.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);

    std::uint64_t sorted_list[100];
    for (int i = 0; i < 100; ++i) {
        const auto item = rime.rimeMin(*start, end);
        sorted_list[i] = item->raw;
    }

    std::printf("10 smallest of %llu values:",
                static_cast<unsigned long long>(n));
    for (int i = 0; i < 10; ++i)
        std::printf(" %llu",
                    static_cast<unsigned long long>(sorted_list[i]));
    std::printf("\n100th smallest: %llu\n",
                static_cast<unsigned long long>(sorted_list[99]));
    std::printf("simulated time: %.3f ms, device energy: %.3f mJ\n",
                rime.nowSeconds() * 1e3, rime.energyPJ() * 1e-9);

    rime.rimeFree(*start);
    return 0;
}
