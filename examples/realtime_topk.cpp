/**
 * @file
 * Real-time analytics scenario: top-k / k-th order statistics over
 * a float telemetry stream.  Ranking in memory makes finding the
 * k-th value an O(k)-bandwidth operation (section III-B-2): k
 * accesses rather than a full sort.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/rng.hh"
#include "rime/ops.hh"

int
main()
{
    using namespace rime;

    RimeLibrary rime{LibraryConfig{}};
    Rng rng(11);

    // A telemetry buffer of 1M float latencies (ms).
    const std::uint64_t n = 1 << 20;
    std::vector<float> latencies;
    std::vector<std::uint64_t> raws;
    latencies.reserve(n);
    raws.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        const float ms =
            static_cast<float>(rng.uniform(0.05, 30.0) *
                               rng.uniform(0.1, 1.0));
        latencies.push_back(ms);
        raws.push_back(floatToRaw(ms));
    }

    // p99 latency: the k-th largest with k = 1% of the samples.
    const std::uint64_t k = n / 100;
    const auto worst = rimeTopK(rime, raws, k, /*largest=*/true,
                                KeyMode::Float);
    const float p99 = rawToFloat(
        static_cast<std::uint32_t>(worst.values.back()));

    auto check = latencies;
    std::nth_element(check.begin(), check.end() - k, check.end());
    const float expect = *(check.end() - k);
    std::printf("p99 latency: %.4f ms (std::nth_element says "
                "%.4f ms)\n", p99, expect);
    if (p99 != expect)
        return 1;

    // The 10 slowest requests, in order.
    std::printf("10 slowest:");
    for (int i = 0; i < 10; ++i) {
        std::printf(" %.2f",
                    rawToFloat(static_cast<std::uint32_t>(
                        worst.values[i])));
    }
    std::printf("\nsimulated: %.3f ms for the top-%llu query "
                "(%.0f pJ/value)\n",
                worst.seconds * 1e3,
                static_cast<unsigned long long>(k),
                worst.energyPJ / static_cast<double>(k));
    return 0;
}
