/**
 * @file
 * Network-routing scenario (section VI-C): shortest paths with
 * Dijkstra over a random network, a minimum spanning tree with both
 * Prim and Kruskal, and a robot path with A* -- every priority-queue
 * operation served by RIME in-situ ranking, cross-checked against
 * the CPU baselines.
 */

#include <cstdio>

#include "sort/access_sink.hh"
#include "workloads/astar.hh"
#include "workloads/kruskal.hh"
#include "workloads/shortest_path.hh"

int
main()
{
    using namespace rime;
    using namespace rime::workloads;

    sort::NullSink sink;
    const Graph net = randomConnectedGraph(50000, 3.0, 2026);
    std::printf("network: %u routers, %zu links\n", net.vertices,
                net.edges.size());

    // --- Shortest paths from router 0.
    {
        RimeLibrary rime{LibraryConfig{}};
        const auto rime_paths = dijkstraRime(rime, net, 0);
        const auto cpu_paths = dijkstraCpu(net, 0, sink);
        if (rime_paths.dist != cpu_paths.dist) {
            std::fprintf(stderr, "Dijkstra mismatch!\n");
            return 1;
        }
        std::printf("Dijkstra: dist[last]=%.4f, %llu pops, "
                    "%.3f ms simulated\n",
                    rime_paths.dist.back(),
                    static_cast<unsigned long long>(
                        rime_paths.counts.pops),
                    rime.nowSeconds() * 1e3);
    }

    // --- Minimum spanning tree, two ways.
    {
        RimeLibrary rime{LibraryConfig{}};
        const auto prim = primRime(rime, net);
        RimeLibrary rime2{LibraryConfig{}};
        const auto kruskal = kruskalRime(rime2, net);
        std::printf("MST: Prim %.3f vs Kruskal %.3f "
                    "(%u edges each)\n",
                    prim.totalWeight, kruskal.totalWeight,
                    prim.edgesUsed);
        if (std::abs(prim.totalWeight - kruskal.totalWeight) > 1e-2) {
            std::fprintf(stderr, "MST mismatch!\n");
            return 1;
        }
    }

    // --- A* route across an obstacle map.
    {
        const GridMap map = randomGrid(256, 256, 0.2, 6);
        RimeLibrary rime{LibraryConfig{}};
        const auto path = astarRime(rime, map, map.cellId(0, 0),
                                    map.cellId(255, 255));
        const auto ref = astarCpu(map, map.cellId(0, 0),
                                  map.cellId(255, 255), sink);
        std::printf("A*: reached=%d cost=%.0f (reference %.0f), "
                    "%llu cells expanded\n",
                    path.reached, path.pathCost, ref.pathCost,
                    static_cast<unsigned long long>(path.expanded));
        if (path.reached != ref.reached ||
            (path.reached && path.pathCost != ref.pathCost)) {
            std::fprintf(stderr, "A* mismatch!\n");
            return 1;
        }
    }
    return 0;
}
