/**
 * @file
 * Packet-scheduling scenario (section VII-A): a strict priority
 * queue where adds are ordinary memory writes and every remove pulls
 * the minimum-key packet out of the memory arrays with one rime_min
 * access.  Two logical threads (producer / consumer) share the
 * queue; the removal order is checked against a CPU heap.
 */

#include <cstdio>

#include "sort/access_sink.hh"
#include "workloads/spq.hh"

int
main()
{
    using namespace rime;
    using namespace rime::workloads;

    SpqParams params;
    params.initialPackets = 100000;
    params.addsPerRemove = 3; // bursty ingress
    params.removes = 50000;
    params.seed = 99;

    RimeLibrary rime{LibraryConfig{}};
    const Tick t0 = rime.now();
    const auto scheduled = spqRime(rime, params);
    const double seconds = ticksToSeconds(rime.now() - t0);

    sort::NullSink sink;
    const auto reference = spqCpu(params, sink);
    if (scheduled.checksum != reference.checksum) {
        std::fprintf(stderr, "scheduling order mismatch!\n");
        return 1;
    }

    std::printf("scheduled %llu packets (R=%u adds per remove)\n",
                static_cast<unsigned long long>(scheduled.removed),
                params.addsPerRemove);
    std::printf("removal order matches the CPU heap "
                "(checksum %016llx)\n",
                static_cast<unsigned long long>(scheduled.checksum));
    std::printf("remove throughput: %.1f M packets/s simulated\n",
                scheduled.removed / seconds / 1e6);
    return 0;
}
