/**
 * @file
 * Cluster tier demo: one ranking namespace over several rime_server
 * processes.
 *
 *   rime_server tcp:127.0.0.1:7471 &
 *   rime_server tcp:127.0.0.1:7472 &
 *   rime_server tcp:127.0.0.1:7473 &
 *   cluster_demo tcp:127.0.0.1:7471 tcp:127.0.0.1:7472 \
 *                tcp:127.0.0.1:7473
 *
 * The demo opens a handful of tenant sessions through a
 * ClusterRouter (consistent-hash placement over the fleet), ranks a
 * small array on each, then drains the busiest instance live: every
 * session homed there is frozen, its state image shipped over the
 * wire to a peer, and the next topK continues where the last one
 * stopped -- same answers, different process.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "cluster/router.hh"

using namespace rime;
using namespace rime::cluster;
using namespace rime::service;

namespace
{

std::vector<std::uint64_t>
sampleValues(unsigned count, std::uint64_t seed)
{
    std::vector<std::uint64_t> raws;
    raws.reserve(count);
    std::uint64_t x = seed;
    for (unsigned i = 0; i < count; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        raws.push_back(x % 1000); // UnsignedFixed: raw order is rank
    }
    return raws;
}

} // namespace

int
main(int argc, char **argv)
{
    RouterConfig cfg;
    for (int i = 1; i < argc; ++i)
        cfg.members.push_back(MemberConfig{argv[i], {}});
    if (cfg.members.size() < 2) {
        std::fprintf(stderr,
                     "usage: %s tcp:host:port tcp:host:port ...\n"
                     "(start rime_server on each endpoint first)\n",
                     argv[0]);
        return 2;
    }

    ClusterRouter router(cfg);
    if (!router.connect()) {
        std::fprintf(stderr, "no cluster member is reachable\n");
        return 1;
    }
    std::printf("cluster: %zu member(s), %u placeable\n",
                router.membership().size(),
                router.membership().placeableCount());

    // A per-tenant cluster-wide quota: the "analytics" tenant may
    // have at most 8 requests in flight across the whole fleet.
    router.setTenantQuota("analytics", TenantQuota{8, 2});

    constexpr unsigned kSessions = 6;
    constexpr unsigned kValues = 64;
    std::vector<std::shared_ptr<ClusterSession>> sessions;
    for (unsigned i = 0; i < kSessions; ++i) {
        ClusterSessionConfig scfg;
        scfg.tenant = "analytics";
        auto s = router.openSession(scfg);
        if (!s) {
            std::fprintf(stderr, "openSession failed\n");
            return 1;
        }
        sessions.push_back(std::move(s));
    }
    for (const auto &s : sessions)
        std::printf("session %llu -> member %u\n",
                    static_cast<unsigned long long>(s->id()),
                    s->member());

    // Rank on every session: malloc -> store -> init -> topK.
    for (unsigned i = 0; i < kSessions; ++i) {
        auto &s = *sessions[i];
        Request req;
        req.kind = RequestKind::Malloc;
        req.bytes = kValues * 4;
        const Response alloc = s.call(req);
        if (!alloc.ok()) {
            std::fprintf(stderr, "malloc failed on session %u\n", i);
            return 1;
        }
        Request store;
        store.kind = RequestKind::StoreArray;
        store.start = alloc.addr;
        store.values = sampleValues(kValues, 42 + i);
        s.call(std::move(store));
        Request init;
        init.kind = RequestKind::Init;
        init.start = alloc.addr;
        init.end = alloc.addr + kValues * 4;
        s.call(std::move(init));
        Request topk;
        topk.kind = RequestKind::TopK;
        topk.start = alloc.addr;
        topk.end = alloc.addr + kValues * 4;
        topk.count = 4;
        const Response r = s.call(std::move(topk));
        std::printf("session %llu top-4:",
                    static_cast<unsigned long long>(s.id()));
        for (const auto &item : r.items)
            std::printf(" %llu",
                        static_cast<unsigned long long>(item.raw));
        std::printf("\n");
    }

    // Live failover: drain the instance homing session 0 and rank
    // again -- the drained state picks up where it left off.
    const unsigned victim = sessions[0]->member();
    std::printf("draining member %u ...\n", victim);
    const unsigned moved = router.drainInstance(victim);
    std::printf("re-homed %u session(s)\n", moved);
    for (const auto &s : sessions)
        std::printf("session %llu -> member %u\n",
                    static_cast<unsigned long long>(s->id()),
                    s->member());

    const RouterStats stats = router.stats();
    std::printf("submitted=%llu migrations=%llu shedQuota=%llu "
                "shedDraining=%llu lost=%llu\n",
                static_cast<unsigned long long>(stats.submitted),
                static_cast<unsigned long long>(stats.migrations),
                static_cast<unsigned long long>(stats.shedQuota),
                static_cast<unsigned long long>(stats.shedDraining),
                static_cast<unsigned long long>(stats.lostSessions));
    for (auto &s : sessions)
        s->close();
    return 0;
}
