/**
 * @file
 * Stand-alone wire-protocol server: a RimeService behind a RimeServer,
 * listening on TCP and/or a Unix-domain socket until SIGINT/SIGTERM.
 *
 *   rime_server [tcp:host:port] [unix:/path]
 *
 * Defaults to tcp:127.0.0.1:7461 when no endpoint is given.  Pair it
 * with the wire_client example (or any RimeClient) for a full remote
 * session: malloc -> storeArray -> init -> topK -> sort -> free over
 * the framed binary protocol.
 *
 * Environment: RIME_JOURNAL_DIR / RIME_SNAPSHOT_INTERVAL /
 * RIME_RECOVERY_MODE / RIME_JOURNAL_FSYNC wire up the durability
 * layer exactly as documented in service/journal.hh, so a killed
 * server restarted on the same journal directory recovers every
 * committed session before accepting connections again.
 * RIME_RESUME_GRACE_MS enables session resumption (parked sessions a
 * reconnecting client reattaches with its resume token) -- required
 * under a ClusterRouter.
 *
 * Signals: SIGINT stops immediately (sockets close, the journal makes
 * it safe).  SIGTERM drains first: a Shutdown notice on every
 * connection, a bounded wait for routers to pull their sessions
 * elsewhere, then a service maintenance pass -- the clean rolling-
 * restart path.
 */

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include <unistd.h>

#include "net/server.hh"
#include "service/journal.hh"
#include "service/service.hh"

using namespace rime;
using namespace rime::service;
using namespace rime::net;

namespace
{

volatile std::sig_atomic_t gStop = 0;

void
onSigInt(int)
{
    gStop = 1; // immediate stop
}

void
onSigTerm(int)
{
    gStop = 2; // graceful drain first
}

} // namespace

int
main(int argc, char **argv)
{
    ServerConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("unix:", 0) == 0) {
            cfg.unixPath = arg;
        } else if (arg.rfind("tcp:", 0) == 0) {
            cfg.tcp = arg;
        } else {
            std::fprintf(stderr,
                         "usage: %s [tcp:host:port] [unix:/path]\n",
                         argv[0]);
            return 2;
        }
    }
    if (cfg.tcp.empty() && cfg.unixPath.empty())
        cfg.tcp = "tcp:127.0.0.1:7461";
    if (const char *grace = std::getenv("RIME_RESUME_GRACE_MS"))
        cfg.resumeGraceMs =
            static_cast<unsigned>(std::strtoul(grace, nullptr, 10));

    ServiceConfig svcCfg;
    svcCfg.durability = DurabilityConfig::fromEnv();
    RimeService service(std::move(svcCfg));
    std::vector<std::shared_ptr<Session>> recovered;
    if (cfg.resumeGraceMs == 0) {
        // With resumption on, the server itself parks the recovered
        // sessions at start(); holding second handles here would
        // close them out from under it at exit.
        recovered = service.recoveredSessions();
        if (!recovered.empty()) {
            std::printf("recovered %zu session(s) from %s\n",
                        recovered.size(),
                        std::getenv("RIME_JOURNAL_DIR"));
        }
    }

    RimeServer server(service, cfg);
    if (!server.start()) {
        std::fprintf(stderr, "rime_server: bind failed: %s\n",
                     std::strerror(errno));
        return 1;
    }
    if (server.tcpPort() != 0)
        std::printf("listening on tcp:127.0.0.1:%u\n",
                    server.tcpPort());
    if (!server.unixSocketPath().empty())
        std::printf("listening on unix:%s\n",
                    server.unixSocketPath().c_str());
    std::fflush(stdout);

    std::signal(SIGINT, onSigInt);
    std::signal(SIGTERM, onSigTerm);
    while (!gStop)
        ::pause();

    if (gStop == 2) {
        // Rolling restart: notify clients, wait for routers to pull
        // their sessions elsewhere (bounded), then let the service
        // drain any unhealthy shards before the sockets go away.
        std::printf("draining: %zu live session(s)\n",
                    server.activeSessions());
        std::fflush(stdout);
        server.beginDrain();
        unsigned wait_ms = 5000;
        if (const char *w = std::getenv("RIME_DRAIN_TIMEOUT_MS"))
            wait_ms = static_cast<unsigned>(
                std::strtoul(w, nullptr, 10));
        const auto deadline = std::chrono::steady_clock::now() +
            std::chrono::milliseconds(wait_ms);
        while (server.activeSessions() > 0 &&
               std::chrono::steady_clock::now() < deadline) {
            std::this_thread::sleep_for(
                std::chrono::milliseconds(20));
        }
        service.maintain();
    }

    std::printf("shutting down: %llu connection(s), %llu request(s) "
                "served, %llu protocol error(s)\n",
                static_cast<unsigned long long>(
                    server.connectionsAccepted()),
                static_cast<unsigned long long>(
                    server.requestsServed()),
                static_cast<unsigned long long>(
                    server.protocolErrors()));
    server.stop();
    return 0;
}
