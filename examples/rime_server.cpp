/**
 * @file
 * Stand-alone wire-protocol server: a RimeService behind a RimeServer,
 * listening on TCP and/or a Unix-domain socket until SIGINT/SIGTERM.
 *
 *   rime_server [tcp:host:port] [unix:/path]
 *
 * Defaults to tcp:127.0.0.1:7461 when no endpoint is given.  Pair it
 * with the wire_client example (or any RimeClient) for a full remote
 * session: malloc -> storeArray -> init -> topK -> sort -> free over
 * the framed binary protocol.
 *
 * Environment: RIME_JOURNAL_DIR / RIME_SNAPSHOT_INTERVAL /
 * RIME_RECOVERY_MODE / RIME_JOURNAL_FSYNC wire up the durability
 * layer exactly as documented in service/journal.hh, so a killed
 * server restarted on the same journal directory recovers every
 * committed session before accepting connections again.
 */

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include <unistd.h>

#include "net/server.hh"
#include "service/journal.hh"
#include "service/service.hh"

using namespace rime;
using namespace rime::service;
using namespace rime::net;

namespace
{

volatile std::sig_atomic_t gStop = 0;

void
onSignal(int)
{
    gStop = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    ServerConfig cfg;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("unix:", 0) == 0) {
            cfg.unixPath = arg;
        } else if (arg.rfind("tcp:", 0) == 0) {
            cfg.tcp = arg;
        } else {
            std::fprintf(stderr,
                         "usage: %s [tcp:host:port] [unix:/path]\n",
                         argv[0]);
            return 2;
        }
    }
    if (cfg.tcp.empty() && cfg.unixPath.empty())
        cfg.tcp = "tcp:127.0.0.1:7461";

    ServiceConfig svcCfg;
    svcCfg.durability = DurabilityConfig::fromEnv();
    RimeService service(std::move(svcCfg));
    const auto recovered = service.recoveredSessions();
    if (!recovered.empty()) {
        std::printf("recovered %zu session(s) from %s\n",
                    recovered.size(),
                    std::getenv("RIME_JOURNAL_DIR"));
    }

    RimeServer server(service, cfg);
    if (!server.start()) {
        std::fprintf(stderr, "rime_server: bind failed: %s\n",
                     std::strerror(errno));
        return 1;
    }
    if (server.tcpPort() != 0)
        std::printf("listening on tcp:127.0.0.1:%u\n",
                    server.tcpPort());
    if (!server.unixSocketPath().empty())
        std::printf("listening on unix:%s\n",
                    server.unixSocketPath().c_str());
    std::fflush(stdout);

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!gStop)
        ::pause();

    std::printf("shutting down: %llu connection(s), %llu request(s) "
                "served, %llu protocol error(s)\n",
                static_cast<unsigned long long>(
                    server.connectionsAccepted()),
                static_cast<unsigned long long>(
                    server.requestsServed()),
                static_cast<unsigned long long>(
                    server.protocolErrors()));
    server.stop();
    return 0;
}
