/**
 * @file
 * Remote-session quick start: a RimeClient driving a full session --
 * malloc, storeArray, init, topK, sort, free -- against a running
 * rime_server, over TCP or a Unix-domain socket.
 *
 *   wire_client [tcp:host:port | unix:/path]
 *
 * Defaults to tcp:127.0.0.1:7461 (the rime_server default).  The
 * extraction results are checked against a local sort of the same
 * keys: the wire adds transport, not semantics.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "net/client.hh"

using namespace rime;
using namespace rime::service;
using namespace rime::net;

int
main(int argc, char **argv)
{
    ClientConfig cfg;
    cfg.endpoint = argc > 1 ? argv[1] : "tcp:127.0.0.1:7461";
    RimeClient client(cfg);
    if (!client.connect()) {
        std::fprintf(stderr,
                     "wire_client: cannot reach %s (is rime_server "
                     "running?)\n",
                     cfg.endpoint.c_str());
        return 1;
    }
    std::printf("connected to %s (%llu shard(s))\n",
                cfg.endpoint.c_str(),
                static_cast<unsigned long long>(client.shards()));

    const std::uint64_t session = client.openSession("quickstart");
    if (session == 0) {
        std::fprintf(stderr, "wire_client: open session failed\n");
        return 1;
    }

    constexpr std::uint64_t kKeys = 256;
    const std::uint64_t bytes = kKeys * sizeof(std::uint32_t);
    Rng rng(42);
    std::vector<std::uint64_t> keys(kKeys);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;

    Request r;
    r.kind = RequestKind::Malloc;
    r.bytes = bytes;
    const Response malloced = client.call(session, std::move(r));
    if (!malloced.ok()) {
        std::fprintf(stderr, "wire_client: malloc failed\n");
        return 1;
    }
    const Addr base = malloced.addr;

    r = Request();
    r.kind = RequestKind::StoreArray;
    r.start = base;
    r.values = keys;
    client.call(session, std::move(r));

    r = Request();
    r.kind = RequestKind::Init;
    r.start = base;
    r.end = base + bytes;
    r.mode = KeyMode::UnsignedFixed;
    r.wordBits = 32;
    client.call(session, std::move(r));

    std::sort(keys.begin(), keys.end());

    r = Request();
    r.kind = RequestKind::TopK;
    r.start = base;
    r.end = base + bytes;
    r.count = 8;
    const Response top = client.call(session, std::move(r));
    std::printf("top-8 smallest:");
    bool match = top.items.size() == 8;
    for (std::size_t i = 0; i < top.items.size(); ++i) {
        std::printf(" %llu",
                    static_cast<unsigned long long>(top.items[i].raw));
        match = match && top.items[i].raw == keys[i];
    }
    std::printf("  [%s]\n", match ? "matches local sort" : "MISMATCH");

    r = Request();
    r.kind = RequestKind::Sort;
    r.start = base;
    r.end = base + bytes;
    const Response rest = client.call(session, std::move(r));
    bool sorted = rest.items.size() == kKeys - 8;
    for (std::size_t i = 0; i < rest.items.size(); ++i)
        sorted = sorted && rest.items[i].raw == keys[i + 8];
    std::printf("sort drained the remaining %zu keys  [%s]\n",
                rest.items.size(),
                sorted ? "matches local sort" : "MISMATCH");

    r = Request();
    r.kind = RequestKind::Free;
    r.start = base;
    client.call(session, std::move(r));
    client.closeSession(session);
    client.disconnect();
    return match && sorted ? 0 : 1;
}
