/**
 * @file
 * Serving-layer scenario: two tenants share a sharded RIME service.
 *
 * "analytics" streams top-k queries over a large telemetry range
 * while "alerting" fires small latency-critical min probes; each gets
 * its own session, quota, and stat group.  The submission queue is
 * deliberately tiny so the demo also shows the backpressure contract:
 * a full shard queue completes the future immediately with
 * Rejected/Backpressure and the client retries -- nothing ever blocks
 * on the device.
 */

#include <cstdio>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.hh"
#include "service/service.hh"

using namespace rime;
using namespace rime::service;

namespace
{

/** Submit-with-retry: sheds are expected with a 4-deep queue. */
Response
callRetrying(Session &s, Request req, unsigned &sheds)
{
    for (;;) {
        Response r = s.call(req);
        if (r.status != ServiceStatus::Rejected)
            return r;
        ++sheds;
        std::this_thread::yield();
    }
}

std::vector<std::uint64_t>
randomKeys(std::uint64_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys(n);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;
    return keys;
}

} // namespace

int
main()
{
    // Two shards, each an independent simulated RIME device; a tiny
    // queue so backpressure actually shows up in a demo-sized run.
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.library.device.bitLevel = false;
    cfg.scheduler.queueCapacity = 4;
    RimeService service(std::move(cfg));

    SessionConfig analyticsCfg;
    analyticsCfg.tenant = "analytics";
    analyticsCfg.weight = 2; // bulk tenant: twice the fair share
    auto analytics = service.openSession(analyticsCfg);

    SessionConfig alertingCfg;
    alertingCfg.tenant = "alerting";
    alertingCfg.maxInFlight = 2; // probes are tiny; cap the quota
    auto alerting = service.openSession(alertingCfg);

    std::printf("analytics -> shard %u, alerting -> shard %u\n",
                analytics->shard(), alerting->shard());

    // Each tenant owns its range: malloc + store + init through the
    // same queue as everything else.
    const std::uint64_t n = 4096;
    const std::uint64_t bytes = n * sizeof(std::uint32_t);
    unsigned sheds = 0;

    const Response bigAlloc = analytics->malloc(bytes).get();
    analytics->storeArray(bigAlloc.addr, randomKeys(n, 1)).get();
    analytics->init(bigAlloc.addr, bigAlloc.addr + bytes,
                    KeyMode::UnsignedFixed).get();

    const Response smallAlloc = alerting->malloc(bytes).get();
    alerting->storeArray(smallAlloc.addr, randomKeys(n, 2)).get();
    alerting->init(smallAlloc.addr, smallAlloc.addr + bytes,
                   KeyMode::UnsignedFixed).get();

    // The analytics tenant pipelines top-k queries: fire a window of
    // async submissions, then drain the futures.
    std::deque<std::future<Response>> window;
    std::uint64_t analyzed = 0;
    for (int batch = 0; batch < 8; ++batch) {
        window.push_back(analytics->topK(
            bigAlloc.addr, bigAlloc.addr + bytes, 32, true));
        // Meanwhile the alerting tenant probes the current minimum
        // synchronously (retrying through any backpressure shed).
        Request probe;
        probe.kind = RequestKind::Min;
        probe.start = smallAlloc.addr;
        probe.end = smallAlloc.addr + bytes;
        const Response min = callRetrying(*alerting, probe, sheds);
        if (min.ok()) {
            std::printf("alert probe %d: min raw %llu (shard tick "
                        "%llu)\n", batch,
                        static_cast<unsigned long long>(
                            min.items.front().raw),
                        static_cast<unsigned long long>(min.shardTick));
        }
        while (window.size() > 2 ||
               (batch == 7 && !window.empty())) {
            const Response r = window.front().get();
            window.pop_front();
            if (r.status == ServiceStatus::Rejected) {
                ++sheds; // resubmit the lost query
                window.push_back(analytics->topK(
                    bigAlloc.addr, bigAlloc.addr + bytes, 32, true));
                continue;
            }
            analyzed += r.items.size();
        }
    }
    std::printf("analytics extracted %llu keys; %u submissions shed "
                "and retried\n",
                static_cast<unsigned long long>(analyzed), sheds);

    // Health rides the same queues as data requests.
    const RimeHealthReport health = service.health();
    std::printf("fleet health: %s (%llu values lost)\n",
                health.pristine() ? "pristine" : "degraded",
                static_cast<unsigned long long>(
                    health.counts.lostValues));

    // Close releases everything a tenant still owns.
    analytics->close();
    alerting->close();

    // The deterministic stat tree (host-dependent "*Host" stats are
    // filtered): per-shard scheduler counters and per-tenant groups.
    std::printf("%s", service.statDumpJson().c_str());
    return 0;
}
