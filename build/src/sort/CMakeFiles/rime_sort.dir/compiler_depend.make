# Empty compiler generated dependencies file for rime_sort.
# This may be replaced when dependencies are built.
