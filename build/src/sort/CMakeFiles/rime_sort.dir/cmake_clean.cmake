file(REMOVE_RECURSE
  "CMakeFiles/rime_sort.dir/parallel_model.cc.o"
  "CMakeFiles/rime_sort.dir/parallel_model.cc.o.d"
  "CMakeFiles/rime_sort.dir/sorters.cc.o"
  "CMakeFiles/rime_sort.dir/sorters.cc.o.d"
  "librime_sort.a"
  "librime_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rime_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
