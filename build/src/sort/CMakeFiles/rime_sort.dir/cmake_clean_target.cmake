file(REMOVE_RECURSE
  "librime_sort.a"
)
