
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rime/api.cc" "src/rime/CMakeFiles/rime_rime.dir/api.cc.o" "gcc" "src/rime/CMakeFiles/rime_rime.dir/api.cc.o.d"
  "/root/repo/src/rime/device.cc" "src/rime/CMakeFiles/rime_rime.dir/device.cc.o" "gcc" "src/rime/CMakeFiles/rime_rime.dir/device.cc.o.d"
  "/root/repo/src/rime/driver.cc" "src/rime/CMakeFiles/rime_rime.dir/driver.cc.o" "gcc" "src/rime/CMakeFiles/rime_rime.dir/driver.cc.o.d"
  "/root/repo/src/rime/operation.cc" "src/rime/CMakeFiles/rime_rime.dir/operation.cc.o" "gcc" "src/rime/CMakeFiles/rime_rime.dir/operation.cc.o.d"
  "/root/repo/src/rime/ops.cc" "src/rime/CMakeFiles/rime_rime.dir/ops.cc.o" "gcc" "src/rime/CMakeFiles/rime_rime.dir/ops.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rime_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rimehw/CMakeFiles/rime_rimehw.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
