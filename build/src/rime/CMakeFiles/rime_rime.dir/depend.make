# Empty dependencies file for rime_rime.
# This may be replaced when dependencies are built.
