file(REMOVE_RECURSE
  "CMakeFiles/rime_rime.dir/api.cc.o"
  "CMakeFiles/rime_rime.dir/api.cc.o.d"
  "CMakeFiles/rime_rime.dir/device.cc.o"
  "CMakeFiles/rime_rime.dir/device.cc.o.d"
  "CMakeFiles/rime_rime.dir/driver.cc.o"
  "CMakeFiles/rime_rime.dir/driver.cc.o.d"
  "CMakeFiles/rime_rime.dir/operation.cc.o"
  "CMakeFiles/rime_rime.dir/operation.cc.o.d"
  "CMakeFiles/rime_rime.dir/ops.cc.o"
  "CMakeFiles/rime_rime.dir/ops.cc.o.d"
  "librime_rime.a"
  "librime_rime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rime_rime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
