file(REMOVE_RECURSE
  "librime_rime.a"
)
