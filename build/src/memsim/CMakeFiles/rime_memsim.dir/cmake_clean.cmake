file(REMOVE_RECURSE
  "CMakeFiles/rime_memsim.dir/bandwidth_probe.cc.o"
  "CMakeFiles/rime_memsim.dir/bandwidth_probe.cc.o.d"
  "CMakeFiles/rime_memsim.dir/dram_params.cc.o"
  "CMakeFiles/rime_memsim.dir/dram_params.cc.o.d"
  "librime_memsim.a"
  "librime_memsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rime_memsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
