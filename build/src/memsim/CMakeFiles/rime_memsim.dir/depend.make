# Empty dependencies file for rime_memsim.
# This may be replaced when dependencies are built.
