file(REMOVE_RECURSE
  "librime_memsim.a"
)
