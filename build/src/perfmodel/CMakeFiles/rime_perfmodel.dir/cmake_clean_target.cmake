file(REMOVE_RECURSE
  "librime_perfmodel.a"
)
