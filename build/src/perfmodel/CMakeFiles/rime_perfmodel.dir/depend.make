# Empty dependencies file for rime_perfmodel.
# This may be replaced when dependencies are built.
