file(REMOVE_RECURSE
  "CMakeFiles/rime_perfmodel.dir/baseline.cc.o"
  "CMakeFiles/rime_perfmodel.dir/baseline.cc.o.d"
  "librime_perfmodel.a"
  "librime_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rime_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
