file(REMOVE_RECURSE
  "librime_rimehw.a"
)
