# Empty dependencies file for rime_rimehw.
# This may be replaced when dependencies are built.
