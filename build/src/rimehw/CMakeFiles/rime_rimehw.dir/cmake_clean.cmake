file(REMOVE_RECURSE
  "CMakeFiles/rime_rimehw.dir/chip.cc.o"
  "CMakeFiles/rime_rimehw.dir/chip.cc.o.d"
  "CMakeFiles/rime_rimehw.dir/fast_model.cc.o"
  "CMakeFiles/rime_rimehw.dir/fast_model.cc.o.d"
  "librime_rimehw.a"
  "librime_rimehw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rime_rimehw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
