
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/astar.cc" "src/workloads/CMakeFiles/rime_workloads.dir/astar.cc.o" "gcc" "src/workloads/CMakeFiles/rime_workloads.dir/astar.cc.o.d"
  "/root/repo/src/workloads/kruskal.cc" "src/workloads/CMakeFiles/rime_workloads.dir/kruskal.cc.o" "gcc" "src/workloads/CMakeFiles/rime_workloads.dir/kruskal.cc.o.d"
  "/root/repo/src/workloads/kv.cc" "src/workloads/CMakeFiles/rime_workloads.dir/kv.cc.o" "gcc" "src/workloads/CMakeFiles/rime_workloads.dir/kv.cc.o.d"
  "/root/repo/src/workloads/shortest_path.cc" "src/workloads/CMakeFiles/rime_workloads.dir/shortest_path.cc.o" "gcc" "src/workloads/CMakeFiles/rime_workloads.dir/shortest_path.cc.o.d"
  "/root/repo/src/workloads/spq.cc" "src/workloads/CMakeFiles/rime_workloads.dir/spq.cc.o" "gcc" "src/workloads/CMakeFiles/rime_workloads.dir/spq.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rime_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rime/CMakeFiles/rime_rime.dir/DependInfo.cmake"
  "/root/repo/build/src/sort/CMakeFiles/rime_sort.dir/DependInfo.cmake"
  "/root/repo/build/src/rimehw/CMakeFiles/rime_rimehw.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/rime_memsim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
