file(REMOVE_RECURSE
  "CMakeFiles/rime_workloads.dir/astar.cc.o"
  "CMakeFiles/rime_workloads.dir/astar.cc.o.d"
  "CMakeFiles/rime_workloads.dir/kruskal.cc.o"
  "CMakeFiles/rime_workloads.dir/kruskal.cc.o.d"
  "CMakeFiles/rime_workloads.dir/kv.cc.o"
  "CMakeFiles/rime_workloads.dir/kv.cc.o.d"
  "CMakeFiles/rime_workloads.dir/shortest_path.cc.o"
  "CMakeFiles/rime_workloads.dir/shortest_path.cc.o.d"
  "CMakeFiles/rime_workloads.dir/spq.cc.o"
  "CMakeFiles/rime_workloads.dir/spq.cc.o.d"
  "librime_workloads.a"
  "librime_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rime_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
