# Empty dependencies file for rime_workloads.
# This may be replaced when dependencies are built.
