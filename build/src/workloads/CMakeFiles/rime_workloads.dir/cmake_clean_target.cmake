file(REMOVE_RECURSE
  "librime_workloads.a"
)
