file(REMOVE_RECURSE
  "librime_common.a"
)
