file(REMOVE_RECURSE
  "CMakeFiles/rime_common.dir/key_codec.cc.o"
  "CMakeFiles/rime_common.dir/key_codec.cc.o.d"
  "CMakeFiles/rime_common.dir/logging.cc.o"
  "CMakeFiles/rime_common.dir/logging.cc.o.d"
  "CMakeFiles/rime_common.dir/stats.cc.o"
  "CMakeFiles/rime_common.dir/stats.cc.o.d"
  "librime_common.a"
  "librime_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rime_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
