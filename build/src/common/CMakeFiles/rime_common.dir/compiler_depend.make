# Empty compiler generated dependencies file for rime_common.
# This may be replaced when dependencies are built.
