# Empty compiler generated dependencies file for packet_scheduler.
# This may be replaced when dependencies are built.
