file(REMOVE_RECURSE
  "CMakeFiles/packet_scheduler.dir/packet_scheduler.cpp.o"
  "CMakeFiles/packet_scheduler.dir/packet_scheduler.cpp.o.d"
  "packet_scheduler"
  "packet_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/packet_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
