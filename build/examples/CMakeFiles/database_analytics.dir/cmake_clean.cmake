file(REMOVE_RECURSE
  "CMakeFiles/database_analytics.dir/database_analytics.cpp.o"
  "CMakeFiles/database_analytics.dir/database_analytics.cpp.o.d"
  "database_analytics"
  "database_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
