# Empty compiler generated dependencies file for database_analytics.
# This may be replaced when dependencies are built.
