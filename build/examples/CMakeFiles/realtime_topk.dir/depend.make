# Empty dependencies file for realtime_topk.
# This may be replaced when dependencies are built.
