file(REMOVE_RECURSE
  "CMakeFiles/realtime_topk.dir/realtime_topk.cpp.o"
  "CMakeFiles/realtime_topk.dir/realtime_topk.cpp.o.d"
  "realtime_topk"
  "realtime_topk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/realtime_topk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
