# Empty compiler generated dependencies file for ablation_rime.
# This may be replaced when dependencies are built.
