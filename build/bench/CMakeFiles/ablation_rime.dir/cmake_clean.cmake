file(REMOVE_RECURSE
  "CMakeFiles/ablation_rime.dir/ablation_rime.cc.o"
  "CMakeFiles/ablation_rime.dir/ablation_rime.cc.o.d"
  "ablation_rime"
  "ablation_rime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
