# Empty compiler generated dependencies file for fig01_bandwidth.
# This may be replaced when dependencies are built.
