file(REMOVE_RECURSE
  "CMakeFiles/fig18_priority_queue.dir/fig18_priority_queue.cc.o"
  "CMakeFiles/fig18_priority_queue.dir/fig18_priority_queue.cc.o.d"
  "fig18_priority_queue"
  "fig18_priority_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_priority_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
