# Empty dependencies file for fig18_priority_queue.
# This may be replaced when dependencies are built.
