file(REMOVE_RECURSE
  "CMakeFiles/fig02_bw_sensitivity.dir/fig02_bw_sensitivity.cc.o"
  "CMakeFiles/fig02_bw_sensitivity.dir/fig02_bw_sensitivity.cc.o.d"
  "fig02_bw_sensitivity"
  "fig02_bw_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_bw_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
