# Empty compiler generated dependencies file for fig02_bw_sensitivity.
# This may be replaced when dependencies are built.
