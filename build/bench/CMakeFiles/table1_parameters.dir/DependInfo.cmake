
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table1_parameters.cc" "bench/CMakeFiles/table1_parameters.dir/table1_parameters.cc.o" "gcc" "bench/CMakeFiles/table1_parameters.dir/table1_parameters.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rime/CMakeFiles/rime_rime.dir/DependInfo.cmake"
  "/root/repo/build/src/memsim/CMakeFiles/rime_memsim.dir/DependInfo.cmake"
  "/root/repo/build/src/rimehw/CMakeFiles/rime_rimehw.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rime_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
