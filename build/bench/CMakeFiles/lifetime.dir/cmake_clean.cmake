file(REMOVE_RECURSE
  "CMakeFiles/lifetime.dir/lifetime.cc.o"
  "CMakeFiles/lifetime.dir/lifetime.cc.o.d"
  "lifetime"
  "lifetime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
