# Empty compiler generated dependencies file for lifetime.
# This may be replaced when dependencies are built.
