# Empty compiler generated dependencies file for fig17_graph_analytics.
# This may be replaced when dependencies are built.
