file(REMOVE_RECURSE
  "CMakeFiles/fig17_graph_analytics.dir/fig17_graph_analytics.cc.o"
  "CMakeFiles/fig17_graph_analytics.dir/fig17_graph_analytics.cc.o.d"
  "fig17_graph_analytics"
  "fig17_graph_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_graph_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
