# Empty dependencies file for fig16_groupby_mergejoin.
# This may be replaced when dependencies are built.
