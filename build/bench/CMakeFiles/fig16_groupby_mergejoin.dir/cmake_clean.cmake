file(REMOVE_RECURSE
  "CMakeFiles/fig16_groupby_mergejoin.dir/fig16_groupby_mergejoin.cc.o"
  "CMakeFiles/fig16_groupby_mergejoin.dir/fig16_groupby_mergejoin.cc.o.d"
  "fig16_groupby_mergejoin"
  "fig16_groupby_mergejoin.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_groupby_mergejoin.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
