file(REMOVE_RECURSE
  "CMakeFiles/test_rimehw_array.dir/test_rimehw_array.cc.o"
  "CMakeFiles/test_rimehw_array.dir/test_rimehw_array.cc.o.d"
  "test_rimehw_array"
  "test_rimehw_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rimehw_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
