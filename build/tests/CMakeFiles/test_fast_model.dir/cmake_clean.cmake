file(REMOVE_RECURSE
  "CMakeFiles/test_fast_model.dir/test_fast_model.cc.o"
  "CMakeFiles/test_fast_model.dir/test_fast_model.cc.o.d"
  "test_fast_model"
  "test_fast_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fast_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
