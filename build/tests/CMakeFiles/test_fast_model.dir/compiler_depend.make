# Empty compiler generated dependencies file for test_fast_model.
# This may be replaced when dependencies are built.
