# Empty compiler generated dependencies file for test_sorters.
# This may be replaced when dependencies are built.
