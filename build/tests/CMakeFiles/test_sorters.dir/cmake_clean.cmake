file(REMOVE_RECURSE
  "CMakeFiles/test_sorters.dir/test_sorters.cc.o"
  "CMakeFiles/test_sorters.dir/test_sorters.cc.o.d"
  "test_sorters"
  "test_sorters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sorters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
