# Empty dependencies file for test_stats_logging.
# This may be replaced when dependencies are built.
