file(REMOVE_RECURSE
  "CMakeFiles/test_stats_logging.dir/test_stats_logging.cc.o"
  "CMakeFiles/test_stats_logging.dir/test_stats_logging.cc.o.d"
  "test_stats_logging"
  "test_stats_logging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
