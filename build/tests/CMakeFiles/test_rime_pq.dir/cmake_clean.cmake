file(REMOVE_RECURSE
  "CMakeFiles/test_rime_pq.dir/test_rime_pq.cc.o"
  "CMakeFiles/test_rime_pq.dir/test_rime_pq.cc.o.d"
  "test_rime_pq"
  "test_rime_pq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rime_pq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
