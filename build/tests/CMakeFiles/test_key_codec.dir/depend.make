# Empty dependencies file for test_key_codec.
# This may be replaced when dependencies are built.
