file(REMOVE_RECURSE
  "CMakeFiles/test_key_codec.dir/test_key_codec.cc.o"
  "CMakeFiles/test_key_codec.dir/test_key_codec.cc.o.d"
  "test_key_codec"
  "test_key_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_key_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
