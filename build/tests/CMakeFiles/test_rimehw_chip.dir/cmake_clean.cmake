file(REMOVE_RECURSE
  "CMakeFiles/test_rimehw_chip.dir/test_rimehw_chip.cc.o"
  "CMakeFiles/test_rimehw_chip.dir/test_rimehw_chip.cc.o.d"
  "test_rimehw_chip"
  "test_rimehw_chip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rimehw_chip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
