/**
 * @file
 * Determinism tests of the parallel scan engine: a bit-level RimeChip
 * driven with threads=1 must be *bit-identical* to one driven with
 * threads=N -- every ExtractResult field, every StatGroup counter,
 * and the accumulated energy -- across randomized workloads with
 * min/max extractions, live stores, sub-ranges, and re-inits.  Also
 * covers the word-parallel BitVector range operations the scan path
 * now relies on, and the thread pool itself.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "common/parallel.hh"
#include "common/rng.hh"
#include "rimehw/chip.hh"

using namespace rime;
using namespace rime::rimehw;

namespace
{

/** Enough units (64 rows x 32+ units) that shards are non-trivial. */
RimeGeometry
shardedGeometry()
{
    RimeGeometry g;
    g.chipsPerChannel = 1;
    g.banksPerChip = 4;
    g.subbanksPerBank = 8;
    g.arraysPerMat = 2;
    g.arrayRows = 64;
    g.arrayCols = 64;
    return g;
}

void
expectSameResult(const ExtractResult &a, const ExtractResult &b,
                 int step)
{
    ASSERT_EQ(a.found, b.found) << "step " << step;
    if (!a.found)
        return;
    EXPECT_EQ(a.raw, b.raw) << "step " << step;
    EXPECT_EQ(a.index, b.index) << "step " << step;
    EXPECT_EQ(a.steps, b.steps) << "step " << step;
    EXPECT_EQ(a.time, b.time) << "step " << step;
}

void
expectSameStats(const RimeChip &a, const RimeChip &b)
{
    // Every counter either chip ever touched must agree exactly --
    // except host wall-clock profiling stats ("*WallNs"), which are
    // excluded from the determinism contract by construction.
    EXPECT_EQ(a.stats().values().size(), b.stats().values().size());
    for (const auto &kv : a.stats().values()) {
        if (isWallClockStat(kv.first))
            continue;
        EXPECT_DOUBLE_EQ(kv.second, b.stats().get(kv.first))
            << kv.first;
    }
    EXPECT_DOUBLE_EQ(a.energyPJ(), b.energyPJ());
}

struct ModeCase
{
    KeyMode mode;
    unsigned k;
    unsigned threads;
};

class ParallelDeterminism : public ::testing::TestWithParam<ModeCase>
{};

} // namespace

TEST_P(ParallelDeterminism, RandomWorkloadBitIdentical)
{
    const auto [mode, k, threads] = GetParam();
    RimeChip serial(shardedGeometry(), RimeTimingParams{}, 1);
    RimeChip parallel(shardedGeometry(), RimeTimingParams{}, threads);
    ASSERT_EQ(serial.hostThreads(), 1u);
    ASSERT_EQ(parallel.hostThreads(), threads);
    serial.configure(k, mode);
    parallel.configure(k, mode);

    const std::size_t n = std::min<std::size_t>(
        768, serial.valueCapacity());
    Rng rng(4200 + k + 17 * threads);
    const std::uint64_t mask = k >= 64 ? ~0ULL : (1ULL << k) - 1;
    auto put = [&](std::uint64_t idx, std::uint64_t raw) {
        serial.writeValue(idx, raw);
        parallel.writeValue(idx, raw);
    };
    for (std::size_t i = 0; i < n; ++i)
        put(i, rng() & mask);

    const std::uint64_t mid = n / 2;
    serial.initRange(0, mid);
    parallel.initRange(0, mid);
    serial.initRange(mid, n);
    parallel.initRange(mid, n);

    for (int step = 0; step < 500; ++step) {
        const unsigned action = static_cast<unsigned>(rng.below(6));
        const bool first = rng.below(2) == 0;
        const std::uint64_t b = first ? 0 : mid;
        const std::uint64_t e = first ? mid : n;
        switch (action) {
          case 0:
          case 1:
            expectSameResult(serial.extract(b, e, false),
                             parallel.extract(b, e, false), step);
            break;
          case 2:
            expectSameResult(serial.extract(b, e, true),
                             parallel.extract(b, e, true), step);
            break;
          case 3: {
            // Live store into the active range.
            const std::uint64_t idx = b + rng.below(e - b);
            put(idx, rng() & mask);
            break;
          }
          case 4:
            ASSERT_EQ(serial.remainingInRange(b, e),
                      parallel.remainingInRange(b, e)) << step;
            break;
          case 5:
            if (rng.below(8) == 0) {
                serial.initRange(b, e);
                parallel.initRange(b, e);
            }
            break;
        }
    }
    expectSameStats(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ParallelDeterminism,
    ::testing::Values(ModeCase{KeyMode::UnsignedFixed, 16, 4},
                      ModeCase{KeyMode::UnsignedFixed, 32, 4},
                      ModeCase{KeyMode::SignedFixed, 16, 4},
                      ModeCase{KeyMode::SignedFixed, 32, 4},
                      ModeCase{KeyMode::Float, 32, 4},
                      ModeCase{KeyMode::UnsignedFixed, 16, 3},
                      ModeCase{KeyMode::SignedFixed, 32, 7}),
    [](const auto &info) {
        const char *m =
            info.param.mode == KeyMode::UnsignedFixed ? "U"
            : info.param.mode == KeyMode::SignedFixed ? "S" : "F";
        return std::string(m) + std::to_string(info.param.k) + "x" +
            std::to_string(info.param.threads);
    });

TEST(ParallelDeterminism, FullDrainIdenticalAcrossWidths)
{
    // Drain an entire range with every thread count; all sequences
    // and final stats must match the serial run exactly.
    RimeChip serial(shardedGeometry(), RimeTimingParams{}, 1);
    serial.configure(16, KeyMode::UnsignedFixed);
    const std::size_t n = std::min<std::size_t>(
        512, serial.valueCapacity());
    Rng rng(77);
    std::vector<std::uint64_t> raws(n);
    for (auto &r : raws)
        r = rng() & 0xFFFF;

    std::vector<ExtractResult> expect;
    for (std::size_t i = 0; i < n; ++i)
        serial.writeValue(i, raws[i]);
    serial.initRange(0, n);
    for (std::size_t i = 0; i < n; ++i)
        expect.push_back(serial.extract(0, n, false));

    for (const unsigned threads : {2u, 4u, 8u}) {
        RimeChip chip(shardedGeometry(), RimeTimingParams{}, threads);
        chip.configure(16, KeyMode::UnsignedFixed);
        for (std::size_t i = 0; i < n; ++i)
            chip.writeValue(i, raws[i]);
        chip.initRange(0, n);
        for (std::size_t i = 0; i < n; ++i) {
            expectSameResult(expect[i], chip.extract(0, n, false),
                             static_cast<int>(i));
        }
        expectSameStats(serial, chip);
    }
}

TEST(BitVectorRanges, WordParallelSetAndClearMatchBitLoops)
{
    // Cross-word boundaries, single-word spans, full words, empties.
    for (const auto &[begin, end] : {std::pair<unsigned, unsigned>
             {0u, 0u}, {0u, 1u}, {5u, 9u}, {0u, 64u}, {63u, 65u},
             {64u, 128u}, {1u, 200u}, {70u, 71u}, {120u, 193u},
             {0u, 200u}}) {
        BitVector fast(200), slow(200);
        fast.setRange(begin, end);
        for (unsigned i = begin; i < end; ++i)
            slow.set(i, true);
        EXPECT_TRUE(fast == slow) << begin << ".." << end;

        BitVector cfast(200), cslow(200);
        cfast.setAll();
        cslow.setAll();
        cfast.clearRange(begin, end);
        for (unsigned i = begin; i < end; ++i)
            cslow.set(i, false);
        EXPECT_TRUE(cfast == cslow) << begin << ".." << end;
    }
}

TEST(BitVectorRanges, FusedAndNotCountsMatchSeparateOps)
{
    Rng rng(9);
    BitVector a(130), b(130), base(130);
    for (unsigned i = 0; i < 130; ++i) {
        a.set(i, rng.below(2) == 0);
        b.set(i, rng.below(3) == 0);
        base.set(i, rng.below(2) == 0);
    }
    BitVector ref = a;
    ref.andNot(b);
    BitVector fused = a;
    EXPECT_EQ(fused.andNotCount(b), ref.count());
    EXPECT_TRUE(fused == ref);

    BitVector ref2 = base;
    ref2.andNot(b);
    BitVector out(130);
    EXPECT_EQ(out.assignAndNotCount(base, b), ref2.count());
    EXPECT_TRUE(out == ref2);
}

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.threads(), 4u);
    std::vector<std::atomic<int>> hits(257);
    pool.run(257, [&](unsigned t) {
        hits[t].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DeterministicReductionIsOrderPreserving)
{
    // String concatenation is non-commutative: identical output for
    // every shard/thread combination proves the reduction order.
    const std::size_t n = 100;
    std::string expect;
    for (std::size_t i = 0; i < n; ++i)
        expect += std::to_string(i) + ",";
    for (const unsigned threads : {1u, 2u, 5u, 8u}) {
        ThreadPool pool(threads);
        const std::string got = parallelReduce(
            pool, n, threads, std::string(),
            [](std::size_t lo, std::size_t hi, unsigned) {
                std::string s;
                for (std::size_t i = lo; i < hi; ++i)
                    s += std::to_string(i) + ",";
                return s;
            },
            [](std::string a, const std::string &b) { return a + b; });
        EXPECT_EQ(got, expect) << threads << " threads";
    }
}

TEST(ThreadPool, ShardBoundsCoverWithoutOverlap)
{
    ThreadPool pool(3);
    std::vector<std::atomic<int>> hits(1000);
    pool.forShards(1000, 3, [&](std::size_t lo, std::size_t hi,
                                unsigned) {
        for (std::size_t i = lo; i < hi; ++i)
            hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}
