/**
 * @file
 * Property tests proving FastRime is observationally equivalent to
 * the bit-level RimeChip: identical extraction results, identical
 * step counts (the LCP theorem), identical energy/statistics, under
 * randomized operation sequences including live stores, mixed
 * min/max ranges, sub-ranges, and re-initialization.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "rimehw/chip.hh"
#include "rimehw/fast_model.hh"

using namespace rime;
using namespace rime::rimehw;

namespace
{

RimeGeometry
tinyGeometry()
{
    RimeGeometry g;
    g.chipsPerChannel = 1;
    g.banksPerChip = 2;
    g.subbanksPerBank = 4;
    g.arraysPerMat = 2;
    g.arrayRows = 8;
    g.arrayCols = 64;
    return g;
}

void
expectSameResult(const ExtractResult &a, const ExtractResult &b,
                 const char *what)
{
    ASSERT_EQ(a.found, b.found) << what;
    if (!a.found)
        return;
    EXPECT_EQ(a.raw, b.raw) << what;
    EXPECT_EQ(a.index, b.index) << what;
    EXPECT_EQ(a.steps, b.steps) << what;
    EXPECT_EQ(a.time, b.time) << what;
}

struct ModeCase
{
    KeyMode mode;
    unsigned k;
};

class Equivalence : public ::testing::TestWithParam<ModeCase>
{};

} // namespace

TEST_P(Equivalence, FullSortIdentical)
{
    const auto [mode, k] = GetParam();
    RimeChip chip(tinyGeometry());
    FastRime fast(tinyGeometry());
    chip.configure(k, mode);
    fast.configure(k, mode);

    const std::size_t n = std::min<std::size_t>(
        96, chip.valueCapacity());
    Rng rng(500 + k);
    const std::uint64_t mask = k >= 64 ? ~0ULL : (1ULL << k) - 1;
    for (std::size_t i = 0; i < n; ++i) {
        // Narrow distribution so duplicates are frequent.
        const std::uint64_t raw = rng() & mask & 0xFFFF;
        chip.writeValue(i, raw);
        fast.writeValue(i, raw);
    }
    chip.initRange(0, n);
    fast.initRange(0, n);

    for (std::size_t i = 0; i <= n; ++i) {
        expectSameResult(chip.extract(0, n, false),
                         fast.extract(0, n, false), "min sort");
    }
    // Statistics must agree exactly.
    for (const char *stat : {"extractions", "scanSteps", "rowReads",
                             "rowWrites", "energyPJ",
                             "columnSearches"}) {
        EXPECT_DOUBLE_EQ(chip.stats().get(stat), fast.stats().get(stat))
            << stat;
    }
}

TEST_P(Equivalence, FullMaxSortIdentical)
{
    const auto [mode, k] = GetParam();
    RimeChip chip(tinyGeometry());
    FastRime fast(tinyGeometry());
    chip.configure(k, mode);
    fast.configure(k, mode);

    const std::size_t n = std::min<std::size_t>(
        64, chip.valueCapacity());
    Rng rng(700 + k);
    const std::uint64_t mask = k >= 64 ? ~0ULL : (1ULL << k) - 1;
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t raw = rng() & mask & 0xFF;
        chip.writeValue(i, raw);
        fast.writeValue(i, raw);
    }
    chip.initRange(0, n);
    fast.initRange(0, n);
    for (std::size_t i = 0; i <= n; ++i) {
        expectSameResult(chip.extract(0, n, true),
                         fast.extract(0, n, true), "max sort");
    }
}

TEST_P(Equivalence, RandomOperationSequence)
{
    const auto [mode, k] = GetParam();
    RimeChip chip(tinyGeometry());
    FastRime fast(tinyGeometry());
    chip.configure(k, mode);
    fast.configure(k, mode);

    const std::size_t cap = chip.valueCapacity();
    const std::size_t n = std::min<std::size_t>(64, cap);
    Rng rng(900 + k);
    const std::uint64_t mask = k >= 64 ? ~0ULL : (1ULL << k) - 1;
    auto put = [&](std::uint64_t idx, std::uint64_t raw) {
        chip.writeValue(idx, raw);
        fast.writeValue(idx, raw);
    };
    for (std::size_t i = 0; i < n; ++i)
        put(i, rng() & mask);

    const std::uint64_t mid = n / 2;
    chip.initRange(0, mid);
    fast.initRange(0, mid);
    chip.initRange(mid, n);
    fast.initRange(mid, n);

    for (int step = 0; step < 400; ++step) {
        const unsigned action = static_cast<unsigned>(rng.below(6));
        const bool first = rng.below(2) == 0;
        const std::uint64_t b = first ? 0 : mid;
        const std::uint64_t e = first ? mid : n;
        switch (action) {
          case 0:
          case 1:
            expectSameResult(chip.extract(b, e, false),
                             fast.extract(b, e, false), "seq min");
            break;
          case 2:
            expectSameResult(chip.extract(b, e, true),
                             fast.extract(b, e, true), "seq max");
            break;
          case 3: {
            // Live store into the range.
            const std::uint64_t idx = b + rng.below(e - b);
            put(idx, rng() & mask);
            break;
          }
          case 4: {
            ASSERT_EQ(chip.remainingInRange(b, e),
                      fast.remainingInRange(b, e));
            break;
          }
          case 5:
            if (rng.below(8) == 0) { // occasional re-init
                chip.initRange(b, e);
                fast.initRange(b, e);
            }
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, Equivalence,
    ::testing::Values(ModeCase{KeyMode::UnsignedFixed, 8},
                      ModeCase{KeyMode::UnsignedFixed, 16},
                      ModeCase{KeyMode::UnsignedFixed, 32},
                      ModeCase{KeyMode::UnsignedFixed, 64},
                      ModeCase{KeyMode::SignedFixed, 16},
                      ModeCase{KeyMode::SignedFixed, 32},
                      ModeCase{KeyMode::Float, 32},
                      ModeCase{KeyMode::Float, 64}),
    [](const auto &info) {
        const char *m =
            info.param.mode == KeyMode::UnsignedFixed ? "U"
            : info.param.mode == KeyMode::SignedFixed ? "S" : "F";
        return std::string(m) + std::to_string(info.param.k);
    });

TEST(Equivalence, LargeNFullSortIdentical)
{
    // The parallel scan engine makes the exact model affordable well
    // beyond the seed's 96-value ranges: drain a multi-thousand-value
    // range and require extraction-by-extraction identity plus exact
    // statistics agreement with the fast model.
    RimeGeometry g;
    g.chipsPerChannel = 1;
    g.banksPerChip = 4;
    g.subbanksPerBank = 8;
    g.arraysPerMat = 2;
    g.arrayRows = 64;
    g.arrayCols = 64;

    RimeChip chip(g, RimeTimingParams{}, 4);
    FastRime fast(g);
    chip.configure(16, KeyMode::UnsignedFixed);
    fast.configure(16, KeyMode::UnsignedFixed);

    const std::size_t n = std::min<std::size_t>(
        4096, chip.valueCapacity());
    ASSERT_GE(n, 2048u);
    Rng rng(31337);
    for (std::size_t i = 0; i < n; ++i) {
        // Narrow distribution: plenty of ties across units.
        const std::uint64_t raw = rng() & 0x3FFF;
        chip.writeValue(i, raw);
        fast.writeValue(i, raw);
    }
    chip.initRange(0, n);
    fast.initRange(0, n);

    for (std::size_t i = 0; i <= n; ++i) {
        expectSameResult(chip.extract(0, n, false),
                         fast.extract(0, n, false), "large-N sort");
    }
    for (const char *stat : {"extractions", "scanSteps", "rowReads",
                             "rowWrites", "energyPJ",
                             "columnSearches"}) {
        EXPECT_DOUBLE_EQ(chip.stats().get(stat), fast.stats().get(stat))
            << stat;
    }
}

TEST(FastRime, StoreToExcludedRowStaysInvisible)
{
    FastRime fast(tinyGeometry());
    fast.configure(16, KeyMode::UnsignedFixed);
    fast.writeValue(0, 10);
    fast.writeValue(1, 20);
    fast.initRange(0, 2);
    auto r = fast.extract(0, 2, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.raw, 10u);
    // Store a smaller value into the already-extracted row 0: the
    // exclusion latch keeps it invisible.
    fast.writeValue(0, 1);
    r = fast.extract(0, 2, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.raw, 20u);
    EXPECT_FALSE(fast.extract(0, 2, false).found);
    // After re-init the new value is visible.
    fast.initRange(0, 2);
    r = fast.extract(0, 2, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.raw, 1u);
}

TEST(FastRime, LiveInsertChangesTheMin)
{
    // Mirrors the priority-queue add path: a store into the live
    // range must surface immediately in the next extraction.
    RimeChip chip(tinyGeometry());
    FastRime fast(tinyGeometry());
    for (auto *backend : std::initializer_list<RankBackend *>{
             &chip, &fast}) {
        backend->configure(16, KeyMode::UnsignedFixed);
        backend->writeValue(0, 100);
        backend->writeValue(1, 200);
        backend->writeValue(2, 300);
        backend->initRange(0, 3);
        auto r = backend->extract(0, 3, false);
        ASSERT_TRUE(r.found);
        EXPECT_EQ(r.raw, 100u);
        backend->writeValue(1, 50); // insert below the current min
        r = backend->extract(0, 3, false);
        ASSERT_TRUE(r.found);
        EXPECT_EQ(r.raw, 50u);
        r = backend->extract(0, 3, false);
        ASSERT_TRUE(r.found);
        EXPECT_EQ(r.raw, 300u);
    }
}

TEST(FastRime, CapacityMatchesBitLevelModel)
{
    RimeChip chip(tinyGeometry());
    FastRime fast(tinyGeometry());
    for (const unsigned k : {8u, 16u, 32u, 64u}) {
        chip.configure(k, KeyMode::UnsignedFixed);
        fast.configure(k, KeyMode::UnsignedFixed);
        EXPECT_EQ(chip.valueCapacity(), fast.valueCapacity()) << k;
    }
}
