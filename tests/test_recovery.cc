/**
 * @file
 * Crash-safety and failover tests for the serving layer.
 *
 * The chaos harness forks a child that re-executes this binary (a
 * hidden RecoveryChild.DISABLED_Run entry selected by gtest filter)
 * running a deterministic scripted workload against a journaled
 * single-shard service; RIME_CRASH_POINT / RIME_CRASH_AT_SEQ in the
 * child's environment raise SIGKILL at a seeded journal or snapshot
 * boundary.  The parent then counts the committed (journaled) ops M,
 * constructs a recovery service on the same journal directory, and
 * demands its deterministic stat dump be *bit-identical* to a fresh
 * uninterrupted reference run of the script's first M ops: no
 * committed op lost, no phantom op replayed.
 *
 * Re-exec (not bare fork) keeps the child's crash-spec parsing and
 * hit counters pristine; the parent never sets the crash variables in
 * its own environment.  RIME_THREADS is pinned to 1 before anything
 * touches the global pool so the brief fork-to-exec window never
 * races worker threads.
 *
 * The failover half runs in-process: drainShard() must re-home live
 * sessions with their values, extraction progress, and address space
 * intact (old client-visible addresses keep working on the new shard,
 * post-migration allocations land in the alias window), and
 * maintain() must evacuate a shard whose device wore out.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "common/fdio.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "service/journal.hh"
#include "service/service.hh"

using namespace rime;
using namespace rime::service;

namespace
{

// The controller threads of a service under test are fine, but the
// *global* scan pool must stay workerless so fork() has no foreign
// threads to lose: with RIME_THREADS=1 the pool runs inline.
const bool kSingleThreadedPool = [] {
    ::setenv("RIME_THREADS", "1", 1);
    return true;
}();

// ---------------------------------------------------------------------
// The deterministic script both the child and the reference run.
// ---------------------------------------------------------------------

constexpr std::size_t kKeys = 48;
constexpr std::uint64_t kRangeBytes = kKeys * sizeof(std::uint32_t);

constexpr unsigned kOpMalloc1 = 0;
constexpr unsigned kOpStore1 = 1;
constexpr unsigned kOpInit1 = 2;
constexpr unsigned kExtract1Begin = 3; ///< 12 alternating Min/Max
constexpr unsigned kExtract1End = 15;
constexpr unsigned kOpMalloc2 = 15;
constexpr unsigned kOpStore2 = 16;
constexpr unsigned kOpInit2 = 17;
constexpr unsigned kOpTopK = 18; ///< 5 smallest of range 2
constexpr unsigned kMin2Begin = 19; ///< 8 Min ops on range 2
constexpr unsigned kMin2End = 27;
constexpr unsigned kOpSort1 = 27; ///< drains range 1
constexpr unsigned kOpMin2b = 28;
constexpr unsigned kOpMax2 = 29;
constexpr unsigned kScriptOps = 30;

std::vector<std::uint64_t>
scriptKeys(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys(kKeys);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;
    return keys;
}

SessionConfig
scriptSessionConfig()
{
    SessionConfig cfg;
    cfg.tenant = "alpha";
    cfg.maxInFlight = 8;
    cfg.shard = 0;
    return cfg;
}

Request
scriptRequest(unsigned i, Addr base1, Addr base2)
{
    Request r;
    if (i == kOpMalloc1 || i == kOpMalloc2) {
        r.kind = RequestKind::Malloc;
        r.bytes = kRangeBytes;
    } else if (i == kOpStore1 || i == kOpStore2) {
        r.kind = RequestKind::StoreArray;
        r.start = i == kOpStore1 ? base1 : base2;
        r.values = scriptKeys(i == kOpStore1 ? 41 : 42);
    } else if (i == kOpInit1 || i == kOpInit2) {
        r.kind = RequestKind::Init;
        r.start = i == kOpInit1 ? base1 : base2;
        r.end = r.start + kRangeBytes;
        r.mode = KeyMode::UnsignedFixed;
        r.wordBits = 32;
    } else if (i >= kExtract1Begin && i < kExtract1End) {
        r.kind = (i - kExtract1Begin) % 2 == 0 ? RequestKind::Min
                                               : RequestKind::Max;
        r.start = base1;
        r.end = base1 + kRangeBytes;
    } else if (i == kOpTopK) {
        r.kind = RequestKind::TopK;
        r.start = base2;
        r.end = base2 + kRangeBytes;
        r.count = 5;
    } else if (i >= kMin2Begin && i < kMin2End) {
        r.kind = RequestKind::Min;
        r.start = base2;
        r.end = base2 + kRangeBytes;
    } else if (i == kOpSort1) {
        r.kind = RequestKind::Sort;
        r.start = base1;
        r.end = base1 + kRangeBytes;
    } else if (i == kOpMin2b) {
        r.kind = RequestKind::Min;
        r.start = base2;
        r.end = base2 + kRangeBytes;
    } else if (i == kOpMax2) {
        r.kind = RequestKind::Max;
        r.start = base2;
        r.end = base2 + kRangeBytes;
    } else {
        ADD_FAILURE() << "script has no op " << i;
    }
    return r;
}

/** Sorted values still stored in each range after the first m ops. */
struct ScriptModel
{
    std::vector<std::uint64_t> r1, r2;
};

ScriptModel
scriptModelAfter(unsigned m)
{
    ScriptModel mod;
    if (m > kOpInit1) {
        mod.r1 = scriptKeys(41);
        std::sort(mod.r1.begin(), mod.r1.end());
    }
    if (m > kOpInit2) {
        mod.r2 = scriptKeys(42);
        std::sort(mod.r2.begin(), mod.r2.end());
    }
    for (unsigned i = 0; i < m; ++i) {
        if (i >= kExtract1Begin && i < kExtract1End) {
            if ((i - kExtract1Begin) % 2 == 0)
                mod.r1.erase(mod.r1.begin());
            else
                mod.r1.pop_back();
        } else if (i == kOpTopK) {
            mod.r2.erase(mod.r2.begin(), mod.r2.begin() + 5);
        } else if ((i >= kMin2Begin && i < kMin2End) || i == kOpMin2b) {
            mod.r2.erase(mod.r2.begin());
        } else if (i == kOpSort1) {
            mod.r1.clear();
        } else if (i == kOpMax2) {
            mod.r2.pop_back();
        }
    }
    return mod;
}

ServiceConfig
journaledConfig(const std::string &dir, std::uint64_t snapshot_interval,
                RecoveryMode mode = RecoveryMode::Replay,
                bool fsync = false)
{
    ServiceConfig cfg;
    cfg.shards = 1;
    cfg.durability.dir = dir;
    cfg.durability.snapshotIntervalOps = snapshot_interval;
    cfg.durability.recoveryMode = mode;
    cfg.durability.fsyncEveryAppend = fsync;
    return cfg;
}

/**
 * Run the script's first `ops` requests against a journaled
 * single-shard service.  The child entry runs this until the seeded
 * crash kills it; the in-process restart tests run it to completion.
 */
void
runScript(const std::string &dir, unsigned ops,
          std::uint64_t snapshot_interval, bool close_session,
          bool fsync = false)
{
    RimeService svc(journaledConfig(dir, snapshot_interval,
                                    RecoveryMode::Replay, fsync));
    auto s = svc.openSession(scriptSessionConfig());
    Addr base1 = 0, base2 = 0;
    for (unsigned i = 0; i < ops; ++i) {
        const Response r = s->call(scriptRequest(i, base1, base2));
        if (i == kOpMalloc1)
            base1 = r.addr;
        if (i == kOpMalloc2)
            base2 = r.addr;
    }
    if (close_session)
        s->close();
    else
        svc.shutdown(); // handle's late close becomes a no-op:
                        // the session stays open in the journal
}

/**
 * Pipelined variant for the group-commit sweep: arm one range with
 * three blocking setup calls, then keep a full window of async Min
 * submissions in flight so the shard's deferred batch actually fills.
 * Every completed future appends one byte to dir/acked.log via raw
 * write(2) (page cache survives SIGKILL), letting the parent check
 * the WAL invariant -- acked ⊆ journaled -- at batch granularity.
 */
void
runPipelinedScript(const std::string &dir, unsigned min_ops, bool fsync)
{
    RimeService svc(journaledConfig(dir, 0, RecoveryMode::Replay,
                                    fsync));
    auto s = svc.openSession(scriptSessionConfig());
    Addr base = 0;
    for (unsigned i = 0; i < 3; ++i) {
        const Response r = s->call(scriptRequest(i, base, 0));
        if (i == kOpMalloc1)
            base = r.addr;
    }
    const int ack = ::open((dir + "/acked.log").c_str(),
                           O_WRONLY | O_CREAT | O_APPEND, 0644);
    std::deque<std::future<Response>> window;
    const auto reap = [&] {
        window.front().get();
        window.pop_front();
        const char byte = 'a';
        (void)!::write(ack, &byte, 1);
    };
    for (unsigned i = 0; i < min_ops; ++i) {
        while (window.size() >= scriptSessionConfig().maxInFlight)
            reap();
        Request r;
        r.kind = RequestKind::Min;
        r.start = base;
        r.end = base + kRangeBytes;
        window.push_back(s->submit(std::move(r)));
    }
    while (!window.empty())
        reap();
    ::close(ack);
    svc.shutdown();
}

// ---------------------------------------------------------------------
// Child process plumbing.
// ---------------------------------------------------------------------

/**
 * RIME_TEST_ARTIFACT_DIR redirects the journal temp dirs into a
 * persistent location (and disables cleanup) so CI can upload the
 * journals of a failed — or passing — chaos run as artifacts.
 */
const char *
artifactDir()
{
    return std::getenv("RIME_TEST_ARTIFACT_DIR");
}

std::string
makeTempDir()
{
    std::string tmpl = artifactDir()
        ? std::string(artifactDir()) + "/rime_recovery_XXXXXX"
        : "/tmp/rime_recovery_XXXXXX";
    const char *dir = ::mkdtemp(tmpl.data());
    if (dir == nullptr)
        ADD_FAILURE() << "mkdtemp failed for " << tmpl;
    return dir ? dir : "";
}

std::string
selfExe()
{
    char buf[4096];
    const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
    if (n <= 0)
        return "";
    buf[n] = '\0';
    return buf;
}

/**
 * Fork + re-exec this binary as a crash child: a fresh process (fresh
 * crash-spec parse, fresh hit counters) that runs the script against
 * `dir` and dies at the seeded kill point.  Returns the waitpid
 * status.
 */
int
runChild(const std::string &dir, unsigned ops,
         std::uint64_t snapshot_interval, const std::string &crash_point,
         std::uint64_t crash_seq, bool fsync = false,
         unsigned batch_ops = 0, unsigned pipelined_min_ops = 0)
{
    const std::string exe = selfExe();
    EXPECT_FALSE(exe.empty());
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::setenv("RIME_TEST_CHILD_DIR", dir.c_str(), 1);
        ::setenv("RIME_TEST_CHILD_OPS", std::to_string(ops).c_str(), 1);
        ::setenv("RIME_TEST_CHILD_SNAP",
                 std::to_string(snapshot_interval).c_str(), 1);
        if (fsync)
            ::setenv("RIME_TEST_CHILD_FSYNC", "1", 1);
        if (batch_ops != 0) {
            ::setenv("RIME_BATCH_OPS",
                     std::to_string(batch_ops).c_str(), 1);
        }
        if (pipelined_min_ops != 0) {
            ::setenv("RIME_TEST_CHILD_PIPE",
                     std::to_string(pipelined_min_ops).c_str(), 1);
        }
        if (!crash_point.empty())
            ::setenv("RIME_CRASH_POINT", crash_point.c_str(), 1);
        if (crash_seq != 0) {
            ::setenv("RIME_CRASH_AT_SEQ",
                     std::to_string(crash_seq).c_str(), 1);
        }
        const int devnull = ::open("/dev/null", O_WRONLY);
        if (devnull >= 0) {
            ::dup2(devnull, STDOUT_FILENO);
            ::dup2(devnull, STDERR_FILENO);
        }
        ::execl(exe.c_str(), exe.c_str(),
                "--gtest_filter=RecoveryChild.DISABLED_Run",
                "--gtest_also_run_disabled_tests",
                static_cast<char *>(nullptr));
        ::_exit(127);
    }
    int status = -1;
    ::waitpid(pid, &status, 0);
    return status;
}

bool
killedBySigkill(int status)
{
    return WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL;
}

std::string
journalPath(const std::string &dir)
{
    return dir + "/shard0.journal";
}

unsigned
committedOps(const JournalScan &scan)
{
    unsigned n = 0;
    for (const auto &rec : scan.records)
        n += rec.kind == JournalRecordKind::Op ? 1 : 0;
    return n;
}

bool
hasSessionOpen(const JournalScan &scan)
{
    for (const auto &rec : scan.records)
        if (rec.kind == JournalRecordKind::SessionOpen)
            return true;
    return false;
}

/**
 * Deterministic stat dump of an uninterrupted run of the script's
 * first m ops (the committed prefix the recovered service must
 * reproduce bit-identically).
 */
std::string
referenceDump(const std::string &dir, unsigned m, bool open_session,
              std::uint64_t snapshot_interval, bool close_after = false)
{
    RimeService svc(journaledConfig(dir, snapshot_interval));
    std::shared_ptr<Session> s;
    Addr base1 = 0, base2 = 0;
    if (open_session) {
        s = svc.openSession(scriptSessionConfig());
        for (unsigned i = 0; i < m; ++i) {
            const Response r = s->call(scriptRequest(i, base1, base2));
            if (i == kOpMalloc1)
                base1 = r.addr;
            if (i == kOpMalloc2)
                base2 = r.addr;
        }
        if (close_after)
            s->close();
    }
    return svc.statDumpJson(false);
}

/** Futures the pipelined child completed before dying (one byte each). */
unsigned
ackedOps(const std::string &dir)
{
    struct ::stat st{};
    if (::stat((dir + "/acked.log").c_str(), &st) != 0)
        return 0;
    return static_cast<unsigned>(st.st_size);
}

/**
 * Reference dump for the pipelined workload's committed prefix: the
 * three setup ops followed by m - 3 Min extractions, run blocking.
 * Batched live execution (deferral, extraction coalescing) must not
 * leak into deterministic state, so this sequential run is the oracle
 * the recovered service has to match bit-for-bit.
 */
std::string
pipelinedReferenceDump(const std::string &dir, unsigned m,
                       bool open_session)
{
    RimeService svc(journaledConfig(dir, 0));
    if (!open_session)
        return svc.statDumpJson(false);
    auto s = svc.openSession(scriptSessionConfig());
    Addr base = 0;
    for (unsigned i = 0; i < m; ++i) {
        Request r;
        if (i < 3) {
            r = scriptRequest(i, base, 0);
        } else {
            r.kind = RequestKind::Min;
            r.start = base;
            r.end = base + kRangeBytes;
        }
        const Response resp = s->call(std::move(r));
        if (i == kOpMalloc1)
            base = resp.addr;
    }
    return svc.statDumpJson(false);
}

/**
 * A Sort (or over-asking TopK) of a partially drained range produces
 * the remaining prefix and ends with Empty; a full range ends Ok.
 */
bool
extractionDone(const Response &r)
{
    return r.status == ServiceStatus::Ok ||
        r.status == ServiceStatus::Empty;
}

std::vector<std::uint64_t>
itemValues(const Response &r)
{
    std::vector<std::uint64_t> v;
    v.reserve(r.items.size());
    for (const auto &item : r.items)
        v.push_back(item.raw);
    return v;
}

/**
 * Scoped temp dirs so a failed run leaves nothing behind /tmp.
 * Under RIME_TEST_ARTIFACT_DIR the dirs are kept for upload instead.
 */
struct TempDirs
{
    std::vector<std::string> dirs;
    std::string
    make()
    {
        dirs.push_back(makeTempDir());
        return dirs.back();
    }
    ~TempDirs()
    {
        if (artifactDir())
            return;
        for (const auto &d : dirs) {
            std::error_code ec;
            std::filesystem::remove_all(d, ec);
        }
    }
};

} // namespace

// ---------------------------------------------------------------------
// Hidden child entry: exec'd by runChild(), killed by the crash spec.
// ---------------------------------------------------------------------

TEST(RecoveryChild, DISABLED_Run)
{
    const char *dir = std::getenv("RIME_TEST_CHILD_DIR");
    if (dir == nullptr)
        GTEST_SKIP() << "not a crash child";
    const unsigned ops =
        static_cast<unsigned>(std::atoi(std::getenv("RIME_TEST_CHILD_OPS")));
    const std::uint64_t snap = std::strtoull(
        std::getenv("RIME_TEST_CHILD_SNAP"), nullptr, 10);
    const bool fsync = std::getenv("RIME_TEST_CHILD_FSYNC") != nullptr;
    if (const char *pipe = std::getenv("RIME_TEST_CHILD_PIPE")) {
        runPipelinedScript(dir, static_cast<unsigned>(std::atoi(pipe)),
                           fsync);
        return;
    }
    runScript(dir, ops, snap, /*close_session=*/false, fsync);
}

// ---------------------------------------------------------------------
// Clean restarts (no crash): recovery is exact, not just close.
// ---------------------------------------------------------------------

TEST(CrashRecovery, CleanRestartReplayIsBitIdentical)
{
    TempDirs tmp;
    const std::string dir = tmp.make();
    runScript(dir, kScriptOps, 0, /*close_session=*/false);

    RimeService recovered(journaledConfig(dir, 0));
    // Dump before taking client handles: dropping a recovered handle
    // closes its session like any other.
    const std::string dump = recovered.statDumpJson(false);
    EXPECT_EQ(recovered.recoveredSessions().size(), 1u);
    EXPECT_EQ(dump, referenceDump(tmp.make(), kScriptOps, true, 0));
}

TEST(CrashRecovery, ClosedSessionStaysClosedAfterRestart)
{
    TempDirs tmp;
    const std::string dir = tmp.make();
    runScript(dir, kScriptOps, 0, /*close_session=*/true);

    RimeService recovered(journaledConfig(dir, 0));
    EXPECT_TRUE(recovered.recoveredSessions().empty());
    EXPECT_EQ(recovered.statDumpJson(false),
              referenceDump(tmp.make(), kScriptOps, true, 0,
                            /*close_after=*/true));
}

// ---------------------------------------------------------------------
// The chaos sweep: SIGKILL at every seeded kill point; recovery must
// reproduce the committed prefix bit-identically.
// ---------------------------------------------------------------------

namespace
{

struct CrashCase
{
    const char *label;
    std::string crashPoint;
    std::uint64_t crashSeq;
    std::uint64_t snapshotInterval;
    /** Run the child with fsync-every-append (directory fsyncs on). */
    bool fsync = false;
};

void
checkCrashCase(const CrashCase &c)
{
    SCOPED_TRACE(c.label);
    TempDirs tmp;
    const std::string dir = tmp.make();
    const int status =
        runChild(dir, kScriptOps, c.snapshotInterval, c.crashPoint,
                 c.crashSeq, c.fsync);
    ASSERT_TRUE(killedBySigkill(status))
        << "child was not killed (status " << status << ")";

    const JournalScan scan = readJournal(journalPath(dir));
    const unsigned m = committedOps(scan);
    ASSERT_LT(m, kScriptOps) << "crash fired after the whole script";

    RimeService recovered(
        journaledConfig(dir, c.snapshotInterval, RecoveryMode::Replay));
    EXPECT_EQ(recovered.statDumpJson(false),
              referenceDump(tmp.make(), m, hasSessionOpen(scan),
                            c.snapshotInterval))
        << "recovered state diverged after " << m << " committed ops";
}

} // namespace

TEST(CrashRecovery, KillPointSweepJournalAppends)
{
    const CrashCase cases[] = {
        {"journal-append:1", "journal-append:1", 0, 0},
        {"journal-append:2", "journal-append:2", 0, 0},
        {"journal-append:3", "journal-append:3", 0, 0},
        {"journal-append:7", "journal-append:7", 0, 0},
        {"journal-append:16", "journal-append:16", 0, 0},
        {"journal-append:29", "journal-append:29", 0, 0},
        {"journal-flush:4", "journal-flush:4", 0, 0},
        {"journal-flush:20", "journal-flush:20", 0, 0},
        {"seq:12", "", 12, 0},
        {"seq:25", "", 25, 0},
    };
    for (const auto &c : cases)
        checkCrashCase(c);
}

TEST(CrashRecovery, KillPointSweepSnapshots)
{
    const CrashCase cases[] = {
        {"snapshot-begin:1", "snapshot-begin:1", 0, 8},
        {"snapshot-written:1", "snapshot-written:1", 0, 8},
        {"snapshot-done:1", "snapshot-done:1", 0, 8},
        {"snapshot-begin:2", "snapshot-begin:2", 0, 8},
        {"journal-append:20 (snap 8)", "journal-append:20", 0, 8},
    };
    for (const auto &c : cases)
        checkCrashCase(c);
}

TEST(CrashRecovery, KillPointSweepDirectoryFsyncs)
{
    // The directory-fsync kill points: right after the journal file is
    // first created (header written, parent dir not yet synced) and
    // right after the snapshot rename lands (tmp gone, parent dir not
    // yet synced).  Recovery must be exact on both sides of the fsync,
    // with and without fsync-every-append durability requested.
    const CrashCase cases[] = {
        {"journal-create:1", "journal-create:1", 0, 0},
        {"journal-create:1 (fsync)", "journal-create:1", 0, 0, true},
        {"snapshot-renamed:1", "snapshot-renamed:1", 0, 8},
        {"snapshot-renamed:1 (fsync)", "snapshot-renamed:1", 0, 8,
         true},
        {"snapshot-renamed:2 (fsync)", "snapshot-renamed:2", 0, 8,
         true},
        {"journal-append:12 (fsync)", "journal-append:12", 0, 0, true},
        {"snapshot-done:1 (fsync)", "snapshot-done:1", 0, 8, true},
    };
    for (const auto &c : cases)
        checkCrashCase(c);
}

// ---------------------------------------------------------------------
// Group commit: SIGKILL around the *batch* kill points while a
// pipelined client keeps the deferred batch full.  The WAL invariant
// must hold at batch granularity -- no future completes for an op that
// is not in the journal -- and recovery must still reproduce exactly
// the committed prefix.
// ---------------------------------------------------------------------

namespace
{

void
checkBatchCrashCase(const char *label, const std::string &crash_point)
{
    SCOPED_TRACE(label);
    constexpr unsigned kBatchOps = 8;
    constexpr unsigned kMinOps = 40;
    TempDirs tmp;
    const std::string dir = tmp.make();
    const int status = runChild(dir, 0, 0, crash_point, 0,
                                /*fsync=*/true, kBatchOps, kMinOps);
    ASSERT_TRUE(killedBySigkill(status))
        << "child was not killed (status " << status << ")";

    const JournalScan scan = readJournal(journalPath(dir));
    const unsigned m = committedOps(scan);
    ASSERT_LT(m, 3u + kMinOps) << "crash fired after the whole workload";

    // acked ⊆ journaled: the three setup ops ack through blocking
    // call() and are not counted in acked.log, so every byte there is
    // a completed Min future whose op must already be in the file.
    const unsigned journaled_mins = m > 3 ? m - 3 : 0;
    EXPECT_LE(ackedOps(dir), journaled_mins)
        << "a future completed for an op the journal never committed";

    RimeService recovered(journaledConfig(dir, 0, RecoveryMode::Replay));
    EXPECT_EQ(recovered.statDumpJson(false),
              pipelinedReferenceDump(tmp.make(), m, hasSessionOpen(scan)))
        << "recovered state diverged after " << m << " committed ops";
}

} // namespace

TEST(CrashRecovery, KillPointSweepBatchCommits)
{
    // The session open and each blocking setup call flush as their own
    // commits; from roughly the fifth commit on, each hit is a full
    // deferred batch of pipelined Min ops.  Sweep all three batch
    // stages: before the batch write (journal-append), between write
    // and fsync (journal-flush), and between fsync and the deferred
    // completions (batch-commit).
    const std::pair<const char *, const char *> cases[] = {
        {"journal-append:2 (batch 8)", "journal-append:2"},
        {"journal-append:5 (batch 8)", "journal-append:5"},
        {"journal-append:7 (batch 8)", "journal-append:7"},
        {"journal-flush:5 (batch 8)", "journal-flush:5"},
        {"journal-flush:6 (batch 8)", "journal-flush:6"},
        {"batch-commit:5 (batch 8)", "batch-commit:5"},
        {"batch-commit:7 (batch 8)", "batch-commit:7"},
    };
    for (const auto &[label, point] : cases)
        checkBatchCrashCase(label, point);
}

TEST(CrashRecovery, TornBatchTailTruncatesToCommittedPrefix)
{
    TempDirs tmp;
    const std::string dir = tmp.make();
    const int status = runChild(dir, 0, 0, "batch-commit:6", 0,
                                /*fsync=*/false, /*batch_ops=*/8,
                                /*pipelined_min_ops=*/40);
    ASSERT_TRUE(killedBySigkill(status));

    const JournalScan scan = readJournal(journalPath(dir));
    const unsigned m = committedOps(scan);
    ASSERT_GT(m, 4u);
    ASSERT_EQ(scan.tail, FrameStatus::End);
    ASSERT_GT(scan.cleanBytes, 7u);

    // Tear the final record of the last batch mid-frame, as if the
    // kill had landed inside the batch's write instead of after it.
    std::filesystem::resize_file(journalPath(dir),
                                 scan.cleanBytes - 7);
    const JournalScan torn = readJournal(journalPath(dir));
    EXPECT_NE(torn.tail, FrameStatus::End);
    const unsigned m2 = committedOps(torn);
    ASSERT_EQ(m2, m - 1);

    Addr base = 0;
    bool have_base = false;
    for (const auto &rec : torn.records) {
        if (rec.kind == JournalRecordKind::Op &&
            rec.req.kind == RequestKind::Malloc) {
            base = rec.resultAddr;
            have_base = true;
        }
    }
    ASSERT_TRUE(have_base);

    {
        RimeService recovered(journaledConfig(dir, 0));
        EXPECT_EQ(recovered.statDumpJson(false),
                  pipelinedReferenceDump(tmp.make(), m2,
                                         hasSessionOpen(torn)));
        // The torn batch tail was truncated away; the journal stays
        // appendable on the clean prefix.
        auto handles = recovered.recoveredSessions();
        ASSERT_EQ(handles.size(), 1u);
        const Response r =
            handles.front()->min(base, base + kRangeBytes).get();
        EXPECT_TRUE(r.ok());
        recovered.shutdown();
    }
    const JournalScan rescan = readJournal(journalPath(dir));
    EXPECT_EQ(rescan.tail, FrameStatus::End);
    EXPECT_GT(rescan.records.size(), torn.records.size());
    EXPECT_GT(rescan.lastSeq, torn.lastSeq);
}

// ---------------------------------------------------------------------
// Snapshot-mode recovery: exact logical state in O(state + suffix),
// across two consecutive restarts.
// ---------------------------------------------------------------------

TEST(CrashRecovery, SnapshotModeRecoversExactStateTwice)
{
    TempDirs tmp;
    const std::string dir = tmp.make();
    const int status = runChild(dir, kScriptOps, 6, "", 25);
    ASSERT_TRUE(killedBySigkill(status));

    const unsigned m = committedOps(readJournal(journalPath(dir)));
    ASSERT_GT(m, kOpInit2) << "crash fired before both ranges existed";
    ScriptModel model = scriptModelAfter(m);
    ASSERT_FALSE(model.r2.empty());

    Addr base2 = 0;
    {
        RimeService svc(journaledConfig(dir, 6, RecoveryMode::Snapshot));
        auto handles = svc.recoveredSessions();
        ASSERT_EQ(handles.size(), 1u);
        auto &s = *handles.front();

        // Zero committed loss: the next two minima of range 2 are
        // exactly what the model says survives the crash.
        for (const auto &rec : readJournal(journalPath(dir)).records) {
            if (rec.kind == JournalRecordKind::Op &&
                rec.req.kind == RequestKind::Malloc) {
                base2 = rec.resultAddr; // last Malloc wins: range 2
            }
        }
        for (int i = 0; i < 2; ++i) {
            const Response r =
                s.min(base2, base2 + kRangeBytes).get();
            ASSERT_TRUE(r.ok());
            ASSERT_EQ(r.items.size(), 1u);
            EXPECT_EQ(r.items[0].raw, model.r2.front());
            model.r2.erase(model.r2.begin());
        }
        svc.shutdown(); // keep the session open in the journal
    }

    // Second restart: the post-recovery ops just committed must
    // survive too (the journal stayed appendable after recovery).
    {
        RimeService svc(journaledConfig(dir, 6, RecoveryMode::Snapshot));
        auto handles = svc.recoveredSessions();
        ASSERT_EQ(handles.size(), 1u);
        auto &s = *handles.front();
        const Response sorted =
            s.call([&] {
                Request r;
                r.kind = RequestKind::Sort;
                r.start = base2;
                r.end = base2 + kRangeBytes;
                return r;
            }());
        ASSERT_TRUE(extractionDone(sorted));
        EXPECT_EQ(itemValues(sorted), model.r2);
        s.close();
    }
}

// ---------------------------------------------------------------------
// A torn tail (partial frame) is dropped, and the journal stays
// appendable (and fully readable) after recovery truncates it.
// ---------------------------------------------------------------------

TEST(CrashRecovery, TornTailIsDroppedAndJournalStaysAppendable)
{
    TempDirs tmp;
    const std::string dir = tmp.make();
    const int status = runChild(dir, kScriptOps, 0, "journal-flush:12", 0);
    ASSERT_TRUE(killedBySigkill(status));

    // Simulate the kill landing mid-write: a few garbage bytes of a
    // frame that never completed.
    {
        std::ofstream f(journalPath(dir),
                        std::ios::binary | std::ios::app);
        const char torn[] = {0x21, 0x43, 0x65, 0x07, 0x7f};
        f.write(torn, sizeof(torn));
    }
    const JournalScan scan = readJournal(journalPath(dir));
    EXPECT_NE(scan.tail, FrameStatus::End);
    const unsigned m = committedOps(scan);
    ASSERT_GT(m, kExtract1Begin);

    Addr base1 = 0;
    for (const auto &rec : scan.records) {
        if (rec.kind == JournalRecordKind::Op &&
            rec.req.kind == RequestKind::Malloc && base1 == 0) {
            base1 = rec.resultAddr;
        }
    }
    {
        RimeService recovered(journaledConfig(dir, 0));
        EXPECT_EQ(recovered.statDumpJson(false),
                  referenceDump(tmp.make(), m, true, 0));
        // The torn bytes were truncated away; new appends must land
        // on the clean prefix and stay readable.
        auto handles = recovered.recoveredSessions();
        ASSERT_EQ(handles.size(), 1u);
        const Response r =
            handles.front()->min(base1, base1 + kRangeBytes).get();
        EXPECT_TRUE(r.ok());
        recovered.shutdown();
    }
    const JournalScan rescan = readJournal(journalPath(dir));
    EXPECT_EQ(rescan.tail, FrameStatus::End);
    EXPECT_GT(rescan.records.size(), scan.records.size());
    EXPECT_GT(rescan.lastSeq, scan.lastSeq);
}

// ---------------------------------------------------------------------
// Health-driven failover: live sessions survive a shard drain with
// values, progress, and address space intact.
// ---------------------------------------------------------------------

TEST(Failover, DrainShardRehomesLiveSessions)
{
    ServiceConfig cfg;
    cfg.shards = 2;
    RimeService svc(std::move(cfg));
    auto s = svc.openSession(scriptSessionConfig());
    ASSERT_EQ(s->shard(), 0u);

    auto keys = scriptKeys(77);
    const Addr base = s->malloc(kRangeBytes).get().addr;
    ASSERT_TRUE(s->storeArray(base, keys).get().ok());
    ASSERT_TRUE(
        s->init(base, base + kRangeBytes, KeyMode::UnsignedFixed).get().ok());
    std::sort(keys.begin(), keys.end());
    for (int i = 0; i < 3; ++i) {
        const Response r = s->min(base, base + kRangeBytes).get();
        ASSERT_TRUE(r.ok());
        EXPECT_EQ(r.items[0].raw, keys[static_cast<std::size_t>(i)]);
    }

    EXPECT_EQ(svc.drainShard(0), 1u);
    EXPECT_TRUE(svc.loads()[0].draining);
    EXPECT_EQ(s->shard(), 1u);

    // The old client-visible addresses keep working on the new shard,
    // and extraction resumes exactly where it left off.
    const Response next = s->min(base, base + kRangeBytes).get();
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(next.items[0].raw, keys[3]);

    // Post-migration allocations land in the alias window and serve
    // a full store/init/extract cycle.
    const Response m2 = s->malloc(kRangeBytes).get();
    ASSERT_TRUE(m2.ok());
    auto keys2 = scriptKeys(78);
    ASSERT_TRUE(s->storeArray(m2.addr, keys2).get().ok());
    ASSERT_TRUE(s->init(m2.addr, m2.addr + kRangeBytes,
                        KeyMode::UnsignedFixed)
                    .get()
                    .ok());
    const Response min2 = s->min(m2.addr, m2.addr + kRangeBytes).get();
    ASSERT_TRUE(min2.ok());
    EXPECT_EQ(min2.items[0].raw,
              *std::min_element(keys2.begin(), keys2.end()));

    const Response rest = s->sort(base, base + kRangeBytes).get();
    ASSERT_TRUE(extractionDone(rest));
    EXPECT_EQ(itemValues(rest),
              std::vector<std::uint64_t>(keys.begin() + 4, keys.end()));
    s->close();
}

TEST(Failover, MigratedSessionSurvivesRestart)
{
    TempDirs tmp;
    const std::string dir = tmp.make();
    ServiceConfig cfg = journaledConfig(dir, 0);
    cfg.shards = 2;

    Addr base = 0;
    auto keys = scriptKeys(91);
    {
        RimeService svc(std::move(cfg));
        auto s = svc.openSession(scriptSessionConfig());
        base = s->malloc(kRangeBytes).get().addr;
        ASSERT_TRUE(s->storeArray(base, keys).get().ok());
        ASSERT_TRUE(s->init(base, base + kRangeBytes,
                            KeyMode::UnsignedFixed)
                        .get()
                        .ok());
        std::sort(keys.begin(), keys.end());
        ASSERT_TRUE(s->min(base, base + kRangeBytes).get().ok());
        ASSERT_TRUE(s->min(base, base + kRangeBytes).get().ok());
        ASSERT_EQ(svc.drainShard(0), 1u);
        // Two more committed ops on the *new* shard.
        ASSERT_TRUE(s->min(base, base + kRangeBytes).get().ok());
        ASSERT_TRUE(s->max(base, base + kRangeBytes).get().ok());
        svc.shutdown();
    }

    ServiceConfig rcfg = journaledConfig(dir, 0);
    rcfg.shards = 2;
    RimeService recovered(std::move(rcfg));
    auto handles = recovered.recoveredSessions();
    ASSERT_EQ(handles.size(), 1u);
    const Response rest =
        handles.front()->sort(base, base + kRangeBytes).get();
    ASSERT_TRUE(extractionDone(rest));
    EXPECT_EQ(itemValues(rest),
              std::vector<std::uint64_t>(keys.begin() + 3,
                                         keys.end() - 1));
    handles.front()->close();
}

TEST(Failover, MaintainDrainsWornShard)
{
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.library.device.bitLevel = true;
    cfg.library.device.faults.seed = 3;
    cfg.library.device.faults.wearOutBlockWrites = 40;
    cfg.library.device.faults.spareRowsPerUnit = 2;
    cfg.library.device.faults.spareUnitsPerChip = 1;
    RimeService svc(std::move(cfg));

    // Wear shard 0 out with a scratch session hammering one extent.
    {
        auto scratch = svc.openSession(scriptSessionConfig());
        ASSERT_EQ(scratch->shard(), 0u);
        const Addr sb = scratch->malloc(kRangeBytes).get().addr;
        bool worn = false;
        Rng rng(5);
        for (int round = 0; round < 200 && !worn; ++round) {
            std::vector<std::uint64_t> noise(kKeys);
            for (auto &v : noise)
                v = rng() & 0xFFFFFFFFULL;
            // Stores may legitimately fail once cells freeze; the
            // wear (and the health report) is what matters here.
            (void)scratch->storeArray(sb, noise).get();
            if (round % 10 == 9) {
                const Response h = scratch->health().get();
                ASSERT_TRUE(h.ok());
                worn = h.health.counts.deadUnits > 0 ||
                    h.health.counts.retiredUnits > 0;
            }
        }
        ASSERT_TRUE(worn) << "wear-out never produced dead units";
        scratch->close();
    }

    auto s = svc.openSession(scriptSessionConfig());
    ASSERT_EQ(s->shard(), 0u);
    auto keys = scriptKeys(55);
    const Addr base = s->malloc(kRangeBytes).get().addr;
    ASSERT_TRUE(s->storeArray(base, keys).get().ok());
    ASSERT_TRUE(
        s->init(base, base + kRangeBytes, KeyMode::UnsignedFixed).get().ok());
    std::sort(keys.begin(), keys.end());
    ASSERT_TRUE(s->min(base, base + kRangeBytes).get().ok());

    EXPECT_GE(svc.maintain(), 1u);
    EXPECT_TRUE(svc.loads()[0].draining);
    EXPECT_EQ(s->shard(), 1u);

    const Response next = s->min(base, base + kRangeBytes).get();
    ASSERT_TRUE(next.ok());
    EXPECT_EQ(next.items[0].raw, keys[1]);
    const Response rest = s->sort(base, base + kRangeBytes).get();
    ASSERT_TRUE(extractionDone(rest));
    EXPECT_EQ(itemValues(rest),
              std::vector<std::uint64_t>(keys.begin() + 2, keys.end()));
    s->close();

    // A second maintain() is a no-op: shard 0 is already draining and
    // shard 1 is healthy.
    EXPECT_EQ(svc.maintain(), 0u);
}

// ---------------------------------------------------------------------
// Durability I/O regressions: short writes are resumed (not fatal),
// and a dropped append is fatal (not silent).
// ---------------------------------------------------------------------

namespace
{

int shimCalls = 0;

/** Transfer at most one byte per call; every third call fakes EINTR. */
ssize_t
dribbleShim(int fd, const void *buf, std::size_t len)
{
    if (++shimCalls % 3 == 0) {
        errno = EINTR;
        return -1;
    }
    return ::write(fd, buf, len > 0 ? 1 : 0);
}

/** Restore the real write(2) when a test scope ends. */
struct ShimGuard
{
    explicit ShimGuard(fdio_detail::WriteFn fn)
    {
        shimCalls = 0;
        fdio_detail::writeShim = fn;
    }
    ~ShimGuard() { fdio_detail::writeShim = &::write; }
};

JournalRecord
opRecord(std::uint64_t seq)
{
    JournalRecord rec;
    rec.kind = JournalRecordKind::Op;
    rec.seq = seq;
    rec.sessionId = 7;
    rec.req.kind = RequestKind::Min;
    rec.req.start = seq * 64;
    rec.req.end = seq * 64 + kRangeBytes;
    rec.status = ServiceStatus::Ok;
    return rec;
}

} // namespace

TEST(JournalDurability, ShortWritesAndEintrAreResumedNotFatal)
{
    TempDirs tmp;
    const std::string path = journalPath(tmp.make());

    // Open (header) and every append run against a write(2) that
    // dribbles one byte per call and fails every third call with
    // EINTR -- the worst case the fix must survive without losing or
    // tearing a single committed record.
    {
        ShimGuard guard(&dribbleShim);
        JournalWriter w;
        w.open(path, /*fsync_every_append=*/false);
        for (std::uint64_t seq = 1; seq <= 5; ++seq)
            w.append(seq, encodeRecord(opRecord(seq)));
        w.close();
    }

    const JournalScan scan = readJournal(path);
    EXPECT_EQ(scan.tail, FrameStatus::End);
    ASSERT_EQ(scan.records.size(), 5u);
    EXPECT_EQ(scan.lastSeq, 5u);
    for (std::uint64_t seq = 1; seq <= 5; ++seq) {
        const JournalRecord &rec = scan.records[seq - 1];
        EXPECT_EQ(rec.kind, JournalRecordKind::Op);
        EXPECT_EQ(rec.seq, seq);
        EXPECT_EQ(rec.sessionId, 7u);
        EXPECT_EQ(rec.req.kind, RequestKind::Min);
        EXPECT_EQ(rec.req.start, seq * 64);
    }
}

TEST(JournalDurability, SnapshotPublicationSurvivesShortWrites)
{
    TempDirs tmp;
    const std::string path = tmp.make() + "/shard0.snapshot";

    ShardSnapshot snap;
    snap.seq = 42;
    snap.tick = 12345;
    snap.wordBits = 32;
    SessionImage img;
    img.id = 9;
    img.tenant = "alpha";
    snap.sessions.push_back(img);
    {
        ShimGuard guard(&dribbleShim);
        writeSnapshotFile(path, snap, /*fsync_dir=*/true);
    }

    ShardSnapshot back;
    ASSERT_TRUE(readSnapshotFile(path, back));
    EXPECT_EQ(back.seq, 42u);
    EXPECT_EQ(back.tick, 12345u);
    ASSERT_EQ(back.sessions.size(), 1u);
    EXPECT_EQ(back.sessions[0].id, 9u);
    EXPECT_EQ(back.sessions[0].tenant, "alpha");
    // The tmp file was renamed away, not left beside the snapshot.
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
}

TEST(JournalDurability, AppendWithoutOpenJournalIsFatalNotSilent)
{
    // A journaled shard that loses its journal fd must refuse to keep
    // serving: silently dropping the append would acknowledge ops that
    // can never be recovered.
    JournalWriter w;
    EXPECT_FALSE(w.active());
    EXPECT_THROW(w.append(1, encodeRecord(opRecord(1))), FatalError);
}
