/**
 * @file
 * Tests of the RIME-backed strict priority queue: ordering, sentinel
 * handling, decrease-key by in-place store, payload integrity,
 * interleaved add/remove schedules against a reference heap, and the
 * float key mode.
 */

#include <gtest/gtest.h>

#include <queue>

#include "common/rng.hh"
#include "workloads/rime_pq.hh"

using namespace rime;
using namespace rime::workloads;

namespace
{

LibraryConfig
smallConfig()
{
    LibraryConfig cfg;
    cfg.device.channels = 1;
    cfg.device.geometry.chipsPerChannel = 4;
    cfg.device.geometry.banksPerChip = 4;
    cfg.device.geometry.subbanksPerBank = 8;
    cfg.device.geometry.arrayRows = 128;
    cfg.device.geometry.arrayCols = 64;
    return cfg;
}

} // namespace

TEST(RimePq, PopsInKeyOrder)
{
    RimeLibrary lib(smallConfig());
    RimePriorityQueue pq(lib, 100, KeyMode::UnsignedFixed);
    const std::uint32_t keys[] = {50, 10, 40, 20, 30};
    for (const auto k : keys)
        pq.push(k);
    EXPECT_EQ(pq.size(), 5u);
    std::uint64_t prev = 0;
    for (int i = 0; i < 5; ++i) {
        const auto e = pq.pop();
        ASSERT_TRUE(e);
        EXPECT_GE(e->first, prev);
        prev = e->first;
    }
    EXPECT_TRUE(pq.empty());
    EXPECT_FALSE(pq.pop());
}

TEST(RimePq, PayloadsFollowTheirKeys)
{
    RimeLibrary lib(smallConfig());
    RimePriorityQueue pq(lib, 64, KeyMode::UnsignedFixed);
    for (std::uint64_t i = 0; i < 32; ++i)
        pq.push(1000 - i * 10, /*payload=*/i);
    for (std::uint64_t expect = 31; expect != ~0ULL; --expect) {
        const auto e = pq.pop();
        ASSERT_TRUE(e);
        EXPECT_EQ(e->first, 1000 - expect * 10);
        EXPECT_EQ(e->second, expect);
        if (expect == 0)
            break;
    }
}

TEST(RimePq, DecreaseKeyTakesEffect)
{
    RimeLibrary lib(smallConfig());
    RimePriorityQueue pq(lib, 16, KeyMode::UnsignedFixed);
    pq.push(100, 1);
    const auto slot = pq.push(500, 2);
    pq.push(300, 3);
    pq.update(slot, 50); // element 2 becomes the min
    auto e = pq.pop();
    ASSERT_TRUE(e);
    EXPECT_EQ(e->second, 2u);
    EXPECT_EQ(e->first, 50u);
    e = pq.pop();
    ASSERT_TRUE(e);
    EXPECT_EQ(e->second, 1u);
}

TEST(RimePq, RandomScheduleMatchesStdPriorityQueue)
{
    RimeLibrary lib(smallConfig());
    const std::uint64_t ops = 3000;
    RimePriorityQueue pq(lib, ops + 1, KeyMode::UnsignedFixed);
    using Ref = std::priority_queue<std::uint32_t,
                                    std::vector<std::uint32_t>,
                                    std::greater<>>;
    Ref ref;
    Rng rng(77);
    for (std::uint64_t i = 0; i < ops; ++i) {
        if (ref.empty() || rng.below(3) != 0) {
            const auto k =
                static_cast<std::uint32_t>(rng()) & 0x7FFFFFFF;
            pq.push(k);
            ref.push(k);
        } else {
            const auto got = pq.pop();
            ASSERT_TRUE(got);
            EXPECT_EQ(got->first, ref.top());
            ref.pop();
        }
        ASSERT_EQ(pq.size(), ref.size());
    }
    while (!ref.empty()) {
        const auto got = pq.pop();
        ASSERT_TRUE(got);
        EXPECT_EQ(got->first, ref.top());
        ref.pop();
    }
}

TEST(RimePq, FloatKeys)
{
    RimeLibrary lib(smallConfig());
    RimePriorityQueue pq(lib, 16, KeyMode::Float);
    const float keys[] = {3.5f, -2.0f, 0.25f, -10.5f};
    for (std::uint64_t i = 0; i < 4; ++i)
        pq.push(floatToRaw(keys[i]), i);
    float prev = -1e30f;
    for (int i = 0; i < 4; ++i) {
        const auto e = pq.pop();
        ASSERT_TRUE(e);
        const float f = rawToFloat(
            static_cast<std::uint32_t>(e->first));
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(RimePq, SentinelCollisionIsFatal)
{
    RimeLibrary lib(smallConfig());
    RimePriorityQueue pq(lib, 8, KeyMode::UnsignedFixed);
    EXPECT_THROW(pq.push(pq.sentinelRaw()), FatalError);
}

TEST(RimePq, CapacityExhaustionIsFatal)
{
    RimeLibrary lib(smallConfig());
    RimePriorityQueue pq(lib, 2, KeyMode::UnsignedFixed);
    pq.push(1);
    pq.push(2);
    EXPECT_THROW(pq.push(3), FatalError);
}

TEST(RimePq, SlotsAreNotReusedUntilReinit)
{
    // Popped slots keep their exclusion latches: the queue drains
    // even when the same keys are pushed to fresh slots.
    RimeLibrary lib(smallConfig());
    RimePriorityQueue pq(lib, 8, KeyMode::UnsignedFixed);
    pq.push(5);
    EXPECT_TRUE(pq.pop());
    pq.push(5);
    const auto e = pq.pop();
    ASSERT_TRUE(e);
    EXPECT_EQ(e->first, 5u);
    EXPECT_TRUE(pq.empty());
}
