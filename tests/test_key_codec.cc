/**
 * @file
 * Property tests for the order-preserving key codecs: encoded unsigned
 * order must equal numeric order in every data-type mode, and the
 * per-step search polarity must drive Algorithm 1 to the numeric
 * minimum/maximum (checked against the reference implementation in
 * test_rimehw_chip.cc).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/key_codec.hh"
#include "common/rng.hh"

using namespace rime;

TEST(KeyCodec, UnsignedIsIdentity)
{
    EXPECT_EQ(encodeKey(0x1234, 16, KeyMode::UnsignedFixed), 0x1234u);
    EXPECT_EQ(decodeKey(0x1234, 16, KeyMode::UnsignedFixed), 0x1234u);
}

TEST(KeyCodec, RoundTripAllModes)
{
    Rng rng(7);
    for (const auto mode : {KeyMode::UnsignedFixed,
                            KeyMode::SignedFixed, KeyMode::Float}) {
        for (const unsigned k : {8u, 16u, 32u, 64u}) {
            for (int i = 0; i < 2000; ++i) {
                const std::uint64_t mask =
                    k >= 64 ? ~0ULL : (1ULL << k) - 1;
                const std::uint64_t raw = rng() & mask;
                EXPECT_EQ(decodeKey(encodeKey(raw, k, mode), k, mode),
                          raw);
            }
        }
    }
}

TEST(KeyCodec, SignedOrderMatchesNumericOrder)
{
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        const unsigned k = 32;
        const auto a = static_cast<std::int32_t>(rng());
        const auto b = static_cast<std::int32_t>(rng());
        const auto ea = encodeKey(signedToRaw(a, k), k,
                                  KeyMode::SignedFixed);
        const auto eb = encodeKey(signedToRaw(b, k), k,
                                  KeyMode::SignedFixed);
        EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
    }
}

TEST(KeyCodec, SignedNarrowWidths)
{
    // Exhaustive for 8-bit signed.
    for (int a = -128; a <= 127; ++a) {
        for (int b = -128; b <= 127; ++b) {
            const auto ea = encodeKey(signedToRaw(a, 8), 8,
                                      KeyMode::SignedFixed);
            const auto eb = encodeKey(signedToRaw(b, 8), 8,
                                      KeyMode::SignedFixed);
            ASSERT_EQ(a < b, ea < eb);
        }
    }
}

TEST(KeyCodec, FloatOrderMatchesNumericOrder)
{
    Rng rng(13);
    std::vector<float> pool;
    for (int i = 0; i < 4000; ++i) {
        const float f = static_cast<float>(
            rng.uniform(-1e6, 1e6));
        pool.push_back(f);
    }
    // Edge values.
    pool.push_back(0.0f);
    pool.push_back(-0.0f);
    pool.push_back(1e-38f);
    pool.push_back(-1e-38f);
    pool.push_back(3.4e38f);
    pool.push_back(-3.4e38f);
    pool.push_back(1.5f);
    pool.push_back(-1.5f);

    for (std::size_t i = 0; i + 1 < pool.size(); i += 2) {
        const float a = pool[i];
        const float b = pool[i + 1];
        const auto ea = encodeKey(floatToRaw(a), 32, KeyMode::Float);
        const auto eb = encodeKey(floatToRaw(b), 32, KeyMode::Float);
        if (a < b)
            EXPECT_LT(ea, eb) << a << " vs " << b;
        else if (b < a)
            EXPECT_LT(eb, ea) << a << " vs " << b;
    }
}

TEST(KeyCodec, FloatSortViaEncoding)
{
    Rng rng(17);
    std::vector<float> values;
    for (int i = 0; i < 1000; ++i)
        values.push_back(static_cast<float>(rng.uniform(-50, 50)));
    std::vector<std::uint64_t> enc;
    for (float f : values)
        enc.push_back(encodeKey(floatToRaw(f), 32, KeyMode::Float));
    std::sort(values.begin(), values.end());
    std::sort(enc.begin(), enc.end());
    for (std::size_t i = 0; i < values.size(); ++i) {
        const float back = rawToFloat(static_cast<std::uint32_t>(
            decodeKey(enc[i], 32, KeyMode::Float)));
        // -0.0 and 0.0 compare equal but have distinct encodings; the
        // encoded order places -0.0 first, which is a valid sort.
        if (values[i] == 0.0f)
            EXPECT_EQ(back, 0.0f);
        else
            EXPECT_EQ(back, values[i]);
    }
}

TEST(KeyCodec, DoubleOrderMatchesNumericOrder)
{
    Rng rng(19);
    for (int i = 0; i < 20000; ++i) {
        const double a = rng.uniform(-1e12, 1e12);
        const double b = rng.uniform(-1e12, 1e12);
        const auto ea = encodeKey(doubleToRaw(a), 64, KeyMode::Float);
        const auto eb = encodeKey(doubleToRaw(b), 64, KeyMode::Float);
        EXPECT_EQ(a < b, ea < eb);
    }
}

TEST(KeyCodec, SearchPolarityUnsigned)
{
    // Unsigned min scans always search for 1s to exclude.
    for (unsigned pos = 0; pos < 32; ++pos) {
        EXPECT_TRUE(searchPolarity(pos, 32, KeyMode::UnsignedFixed,
                                   false, false));
        EXPECT_FALSE(searchPolarity(pos, 32, KeyMode::UnsignedFixed,
                                    false, true));
    }
}

TEST(KeyCodec, SearchPolaritySignBit)
{
    // Signed / float min: the sign step searches for 0s (excluding
    // the non-negatives), as section III-A-2 describes.
    EXPECT_FALSE(searchPolarity(31, 32, KeyMode::SignedFixed, false,
                                false));
    EXPECT_FALSE(searchPolarity(31, 32, KeyMode::Float, false, false));
    // Later signed steps search 1s regardless of sign.
    EXPECT_TRUE(searchPolarity(30, 32, KeyMode::SignedFixed, true,
                               false));
    // Float with negative survivors searches 0s (the value with the
    // maximum magnitude is the minimum), per the Figure 5 example.
    EXPECT_FALSE(searchPolarity(30, 32, KeyMode::Float, true, false));
    EXPECT_TRUE(searchPolarity(30, 32, KeyMode::Float, false, false));
}

TEST(KeyCodec, SignedRawRoundTrip)
{
    for (const int v : {-128, -1, 0, 1, 127}) {
        EXPECT_EQ(rawToSigned(signedToRaw(v, 8), 8), v);
    }
    EXPECT_EQ(rawToSigned(signedToRaw(-(1LL << 31), 32), 32),
              -(1LL << 31));
}

TEST(KeyCodec, ModeNames)
{
    EXPECT_STREQ(keyModeName(KeyMode::UnsignedFixed),
                 "unsigned-fixed");
    EXPECT_STREQ(keyModeName(KeyMode::SignedFixed), "signed-fixed");
    EXPECT_STREQ(keyModeName(KeyMode::Float), "float");
}
