/**
 * @file
 * Cross-validation of the application workloads: for every workload
 * the CPU-baseline and RIME variants must produce identical results,
 * and the baseline instrumentation must generate plausible traffic.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <queue>

#include "cachesim/hierarchy.hh"
#include "workloads/astar.hh"
#include "workloads/graph.hh"
#include "workloads/kruskal.hh"
#include "workloads/kv.hh"
#include "workloads/shortest_path.hh"
#include "workloads/rime_pq.hh"
#include "workloads/spq.hh"

using namespace rime;
using namespace rime::workloads;

namespace
{

LibraryConfig
smallConfig()
{
    LibraryConfig cfg;
    cfg.device.channels = 1;
    cfg.device.geometry.chipsPerChannel = 4;
    cfg.device.geometry.banksPerChip = 4;
    cfg.device.geometry.subbanksPerBank = 8;
    cfg.device.geometry.arrayRows = 128;
    cfg.device.geometry.arrayCols = 64;
    cfg.driver.startupPages = 64;
    cfg.driver.growthPages = 64;
    return cfg;
}

} // namespace

TEST(GraphGen, ConnectedAndConsistent)
{
    const Graph g = randomConnectedGraph(500, 2.0, 7);
    EXPECT_EQ(g.vertices, 500u);
    EXPECT_GE(g.edges.size(), 499u);
    // CSR degree sum equals twice the edge count.
    std::uint64_t degree_sum = 0;
    for (std::uint32_t v = 0; v < g.vertices; ++v)
        degree_sum += g.degree(v);
    EXPECT_EQ(degree_sum, 2 * g.edges.size());
    // Connectivity: BFS reaches everything.
    std::vector<std::uint8_t> seen(g.vertices, 0);
    std::queue<std::uint32_t> frontier;
    frontier.push(0);
    seen[0] = 1;
    std::uint32_t reached = 1;
    while (!frontier.empty()) {
        const std::uint32_t u = frontier.front();
        frontier.pop();
        for (std::uint32_t e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e) {
            const std::uint32_t v = g.adjVertex[e];
            if (!seen[v]) {
                seen[v] = 1;
                ++reached;
                frontier.push(v);
            }
        }
    }
    EXPECT_EQ(reached, g.vertices);
}

TEST(Dijkstra, CpuAndRimeAgree)
{
    const Graph g = randomConnectedGraph(300, 3.0, 11);
    sort::NullSink null;
    const auto cpu = dijkstraCpu(g, 0, null);

    RimeLibrary lib(smallConfig());
    const auto rime = dijkstraRime(lib, g, 0);
    ASSERT_EQ(cpu.dist.size(), rime.dist.size());
    for (std::size_t v = 0; v < cpu.dist.size(); ++v)
        EXPECT_EQ(cpu.dist[v], rime.dist[v]) << v;
    // Every vertex is reachable.
    for (const float d : cpu.dist)
        EXPECT_TRUE(std::isfinite(d));
}

TEST(Dijkstra, MatchesTextbookReference)
{
    const Graph g = randomConnectedGraph(200, 2.0, 13);
    sort::NullSink null;
    const auto got = dijkstraCpu(g, 0, null);

    // Reference: std::priority_queue implementation.
    std::vector<float> dist(g.vertices,
                            std::numeric_limits<float>::infinity());
    using Entry = std::pair<float, std::uint32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    dist[0] = 0.0f;
    pq.push({0.0f, 0});
    while (!pq.empty()) {
        const auto [d, u] = pq.top();
        pq.pop();
        if (d > dist[u])
            continue;
        for (std::uint32_t e = g.rowPtr[u]; e < g.rowPtr[u + 1]; ++e) {
            const std::uint32_t v = g.adjVertex[e];
            const float cand = d + g.adjWeight[e];
            if (cand < dist[v]) {
                dist[v] = cand;
                pq.push({cand, v});
            }
        }
    }
    EXPECT_EQ(got.dist, dist);
}

TEST(Mst, PrimKruskalCpuRimeAllAgree)
{
    const Graph g = randomConnectedGraph(250, 2.5, 17);
    sort::NullSink null;
    const auto prim_cpu = primCpu(g, null);
    const auto kruskal_cpu = kruskalCpu(g, null);

    RimeLibrary lib(smallConfig());
    const auto prim_rime = primRime(lib, g);
    RimeLibrary lib2(smallConfig());
    const auto kruskal_rime = kruskalRime(lib2, g);

    EXPECT_EQ(prim_cpu.edgesUsed, g.vertices - 1);
    EXPECT_EQ(kruskal_cpu.edgesUsed, g.vertices - 1);
    EXPECT_EQ(prim_rime.edgesUsed, g.vertices - 1);
    EXPECT_EQ(kruskal_rime.edgesUsed, g.vertices - 1);
    // All four must find the same MST weight (weights are distinct
    // with probability ~1).
    EXPECT_NEAR(prim_cpu.totalWeight, kruskal_cpu.totalWeight, 1e-3);
    EXPECT_NEAR(prim_cpu.totalWeight, prim_rime.totalWeight, 1e-3);
    EXPECT_NEAR(kruskal_cpu.totalWeight, kruskal_rime.totalWeight,
                1e-3);
}

TEST(AStar, CpuAndRimeFindTheSameOptimalCost)
{
    const GridMap grid = randomGrid(48, 48, 0.25, 19);
    const std::uint32_t start = grid.cellId(0, 0);
    const std::uint32_t goal = grid.cellId(47, 47);
    sort::NullSink null;
    const auto cpu = astarCpu(grid, start, goal, null);

    RimeLibrary lib(smallConfig());
    const auto rime = astarRime(lib, grid, start, goal);
    EXPECT_EQ(cpu.reached, rime.reached);
    if (cpu.reached) {
        EXPECT_EQ(cpu.pathCost, rime.pathCost);
        // Optimal cost is at least the Manhattan distance.
        EXPECT_GE(cpu.pathCost, 94.0f);
    }
}

TEST(AStar, ObstacleFreeGridCostIsManhattan)
{
    const GridMap grid = randomGrid(20, 20, 0.0, 1);
    sort::NullSink null;
    const auto r = astarCpu(grid, grid.cellId(0, 0),
                            grid.cellId(19, 19), null);
    ASSERT_TRUE(r.reached);
    EXPECT_EQ(r.pathCost, 38.0f);
}

TEST(GroupBy, CpuAndRimeAgree)
{
    const auto table = randomTable(4000, 37, 23);
    sort::NullSink null;
    const auto cpu = groupByCpu(table, null);

    RimeLibrary lib(smallConfig());
    const auto rime = groupByRime(lib, table);
    ASSERT_EQ(cpu.groups.size(), rime.groups.size());
    for (std::size_t i = 0; i < cpu.groups.size(); ++i)
        EXPECT_TRUE(cpu.groups[i] == rime.groups[i]) << i;

    // Totals add up.
    std::uint64_t total = 0;
    for (const auto &g : cpu.groups)
        total += g.count;
    EXPECT_EQ(total, table.size());
}

TEST(MergeJoin, CpuAndRimeAgree)
{
    Rng rng(29);
    std::vector<std::uint32_t> a(3000);
    std::vector<std::uint32_t> b(2000);
    for (auto &k : a)
        k = static_cast<std::uint32_t>(rng.below(4096));
    for (auto &k : b)
        k = static_cast<std::uint32_t>(rng.below(4096));
    sort::NullSink null;
    const auto cpu = mergeJoinCpu(a, b, null);

    RimeLibrary lib(smallConfig());
    const auto rime = mergeJoinRime(lib, a, b);
    EXPECT_EQ(cpu.keys, rime.keys);
    EXPECT_FALSE(cpu.keys.empty());
    EXPECT_TRUE(std::is_sorted(cpu.keys.begin(), cpu.keys.end()));
}

TEST(Spq, CpuAndRimeAgree)
{
    SpqParams params;
    params.initialPackets = 2000;
    params.addsPerRemove = 3;
    params.removes = 1500;
    params.seed = 31;
    sort::NullSink null;
    const auto cpu = spqCpu(params, null);

    RimeLibrary lib(smallConfig());
    const auto rime = spqRime(lib, params);
    EXPECT_EQ(cpu.removed, params.removes);
    EXPECT_EQ(cpu.removed, rime.removed);
    EXPECT_EQ(cpu.checksum, rime.checksum);
}

TEST(Spq, RemovesComeOutInKeyOrderWhenNoAdds)
{
    SpqParams params;
    params.initialPackets = 500;
    params.addsPerRemove = 0;
    params.removes = 500;
    RimeLibrary lib(smallConfig());
    // Replay and check monotone non-decreasing keys.
    RimeLibrary lib2(smallConfig());
    workloads::RimePriorityQueue pq(lib2, 500,
                                    KeyMode::UnsignedFixed);
    Rng rng(params.seed);
    std::vector<std::uint32_t> keys;
    for (int i = 0; i < 500; ++i) {
        const auto k = static_cast<std::uint32_t>(rng()) & 0x7FFFFFFF;
        keys.push_back(k);
        pq.push(k);
    }
    std::sort(keys.begin(), keys.end());
    for (int i = 0; i < 500; ++i) {
        const auto entry = pq.pop();
        ASSERT_TRUE(entry);
        EXPECT_EQ(entry->first, keys[i]);
    }
    EXPECT_TRUE(pq.empty());
}

TEST(Workloads, BaselineInstrumentationProducesTraffic)
{
    const Graph g = randomConnectedGraph(2000, 4.0, 37);
    cachesim::Hierarchy hierarchy(1);
    sort::CacheSink sink(hierarchy);
    const auto r = dijkstraCpu(g, 0, sink);
    EXPECT_GT(r.counts.pops, 0u);
    EXPECT_GT(r.counts.instructions(), 0.0);
    EXPECT_GT(hierarchy.memAccesses(), 0u);
}
