/**
 * @file
 * Codec tests for the bit-packed serialization layer under the
 * write-ahead journal (common/bitio.hh): every field width 1..64 must
 * round-trip at arbitrary (unaligned) bit offsets, varints must
 * round-trip across their length breakpoints, and every malformed
 * input -- truncated buffers, flipped bits, absurd lengths -- must be
 * an *explicit* error (latched reader flag or a Truncated/Corrupt
 * frame status), never undefined behaviour or a silently wrong value.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/bitio.hh"
#include "common/rng.hh"

using namespace rime;

namespace
{

/** Mask with the low `width` bits set (width 1..64). */
std::uint64_t
mask(unsigned width)
{
    return width == 64 ? ~0ULL : (1ULL << width) - 1;
}

} // namespace

TEST(BitIo, RoundTripEveryWidthAligned)
{
    for (unsigned width = 1; width <= 64; ++width) {
        const std::uint64_t patterns[] = {
            0, 1, mask(width), mask(width) >> 1,
            0xA5A5A5A5A5A5A5A5ULL & mask(width),
        };
        BitWriter w;
        for (const auto p : patterns)
            w.put(p, width);
        ASSERT_TRUE(w.ok());
        BitReader r(w.bytes());
        for (const auto p : patterns)
            EXPECT_EQ(r.get(width), p) << "width " << width;
        EXPECT_TRUE(r.ok());
    }
}

TEST(BitIo, RoundTripEveryWidthUnaligned)
{
    // A 1..7-bit prefix forces every field to straddle byte
    // boundaries at every possible phase.
    for (unsigned phase = 1; phase <= 7; ++phase) {
        for (unsigned width = 1; width <= 64; ++width) {
            const std::uint64_t v = 0x123456789ABCDEF0ULL & mask(width);
            BitWriter w;
            w.put(0, phase);
            w.put(v, width);
            w.put(mask(width), width);
            ASSERT_TRUE(w.ok());
            BitReader r(w.bytes());
            EXPECT_EQ(r.get(phase), 0u);
            EXPECT_EQ(r.get(width), v)
                << "phase " << phase << " width " << width;
            EXPECT_EQ(r.get(width), mask(width));
            EXPECT_TRUE(r.ok());
        }
    }
}

TEST(BitIo, RandomizedMixedWidthStream)
{
    Rng rng(1234);
    std::vector<std::pair<std::uint64_t, unsigned>> fields;
    BitWriter w;
    for (int i = 0; i < 10000; ++i) {
        const unsigned width = 1 + rng() % 64;
        const std::uint64_t v = rng() & mask(width);
        fields.emplace_back(v, width);
        w.put(v, width);
    }
    ASSERT_TRUE(w.ok());
    BitReader r(w.bytes());
    for (const auto &[v, width] : fields)
        ASSERT_EQ(r.get(width), v) << "width " << width;
    EXPECT_TRUE(r.ok());
}

TEST(BitIo, BadWidthLatchesWriter)
{
    BitWriter w;
    w.put(1, 0);
    EXPECT_FALSE(w.ok());
    EXPECT_EQ(w.bitSize(), 0u);

    BitWriter w2;
    w2.put(1, 65);
    EXPECT_FALSE(w2.ok());
}

TEST(BitIo, BadWidthLatchesReader)
{
    const std::vector<std::uint8_t> bytes(16, 0xFF);
    BitReader r(bytes);
    EXPECT_EQ(r.get(0), 0u);
    EXPECT_FALSE(r.ok());
    // Error is sticky: even in-range reads return zero afterwards.
    EXPECT_EQ(r.get(8), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(BitIo, OverrunLatchesNotUb)
{
    BitWriter w;
    w.putU16(0xBEEF);
    const auto bytes = w.bytes();
    BitReader r(bytes);
    EXPECT_EQ(r.getU16(), 0xBEEFu);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.get(1), 0u); // one bit past the end
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.getU64(), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(BitIo, EmptyInputReads)
{
    BitReader r(nullptr, 0);
    EXPECT_EQ(r.bitsLeft(), 0u);
    EXPECT_EQ(r.get(1), 0u);
    EXPECT_FALSE(r.ok());
}

TEST(BitIo, VarintBreakpoints)
{
    // Every 7-bit group boundary, plus both extremes.
    std::vector<std::uint64_t> edges = {0, 1};
    for (unsigned shift = 7; shift < 64; shift += 7) {
        edges.push_back((1ULL << shift) - 1);
        edges.push_back(1ULL << shift);
        edges.push_back((1ULL << shift) + 1);
    }
    edges.push_back(std::numeric_limits<std::uint64_t>::max());

    BitWriter w;
    for (const auto v : edges)
        w.putVarint(v);
    ASSERT_TRUE(w.ok());
    BitReader r(w.bytes());
    for (const auto v : edges)
        EXPECT_EQ(r.getVarint(), v);
    EXPECT_TRUE(r.ok());
}

TEST(BitIo, TruncatedVarintIsError)
{
    BitWriter w;
    w.putVarint(std::numeric_limits<std::uint64_t>::max());
    auto bytes = w.take();
    ASSERT_GT(bytes.size(), 1u);
    bytes.pop_back(); // drop the terminating group
    BitReader r(bytes);
    r.getVarint();
    EXPECT_FALSE(r.ok());
}

TEST(BitIo, BytesAndStrings)
{
    const std::string s = "journal record \x01\x02\x7f payload";
    const std::vector<std::uint8_t> blob = {0, 255, 128, 1, 2, 3};
    BitWriter w;
    w.putString(s);
    w.putBytes(blob.data(), blob.size());
    w.putString("");
    ASSERT_TRUE(w.ok());
    BitReader r(w.bytes());
    EXPECT_EQ(r.getString(), s);
    EXPECT_EQ(r.getBytes(), blob);
    EXPECT_EQ(r.getString(), "");
    EXPECT_TRUE(r.ok());
}

TEST(BitIo, BytesLengthBeyondInputIsError)
{
    // A varint length prefix claiming far more payload than exists
    // must latch the error and return empty, not read out of bounds.
    BitWriter w;
    w.putVarint(1 << 20);
    w.putU8(0xAA); // only one byte of "payload"
    BitReader r(w.bytes());
    EXPECT_TRUE(r.getBytes().empty());
    EXPECT_FALSE(r.ok());
}

TEST(BitIo, AlignRoundTrip)
{
    BitWriter w;
    w.put(0x5, 3);
    w.align();
    EXPECT_EQ(w.bitSize() % 8, 0u);
    w.putU8(0xC3);
    BitReader r(w.bytes());
    EXPECT_EQ(r.get(3), 0x5u);
    r.align();
    EXPECT_EQ(r.getU8(), 0xC3u);
    EXPECT_TRUE(r.ok());
}

TEST(BitIo, Crc32KnownVector)
{
    // The classic IEEE 802.3 check value.
    const char *s = "123456789";
    EXPECT_EQ(
        crc32(reinterpret_cast<const std::uint8_t *>(s), 9),
        0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(BitIo, FrameRoundTrip)
{
    std::vector<std::uint8_t> stream;
    std::vector<std::vector<std::uint8_t>> payloads = {
        {}, {1}, {0xDE, 0xAD, 0xBE, 0xEF},
        std::vector<std::uint8_t>(1000, 0x5A),
    };
    for (const auto &p : payloads)
        appendFrame(stream, p);

    std::size_t offset = 0;
    std::vector<std::uint8_t> payload;
    for (const auto &p : payloads) {
        ASSERT_EQ(readFrame(stream.data(), stream.size(), offset,
                            payload),
                  FrameStatus::Ok);
        EXPECT_EQ(payload, p);
    }
    EXPECT_EQ(
        readFrame(stream.data(), stream.size(), offset, payload),
        FrameStatus::End);
    EXPECT_EQ(offset, stream.size());
}

TEST(BitIo, TornTailIsTruncatedAtEveryCut)
{
    std::vector<std::uint8_t> stream;
    appendFrame(stream, {1, 2, 3, 4});
    appendFrame(stream, {5, 6, 7, 8, 9, 10});
    const std::size_t first = [&] {
        std::size_t off = 0;
        std::vector<std::uint8_t> p;
        EXPECT_EQ(readFrame(stream.data(), stream.size(), off, p),
                  FrameStatus::Ok);
        return off;
    }();

    // Cut the stream at every byte inside the second frame: the first
    // frame must still parse and the tail must report Truncated with
    // the offset left at the clean-prefix boundary.
    for (std::size_t cut = first + 1; cut < stream.size(); ++cut) {
        std::size_t off = 0;
        std::vector<std::uint8_t> p;
        ASSERT_EQ(readFrame(stream.data(), cut, off, p),
                  FrameStatus::Ok);
        ASSERT_EQ(readFrame(stream.data(), cut, off, p),
                  FrameStatus::Truncated)
            << "cut at " << cut;
        EXPECT_EQ(off, first);
    }
}

TEST(BitIo, FlippedBitIsCorrupt)
{
    std::vector<std::uint8_t> stream;
    appendFrame(stream, {10, 20, 30, 40, 50});
    // Flip one bit in the payload (past the 8-byte prefix).
    for (std::size_t byte = 8; byte < stream.size(); ++byte) {
        auto bad = stream;
        bad[byte] ^= 0x10;
        std::size_t off = 0;
        std::vector<std::uint8_t> p;
        EXPECT_EQ(readFrame(bad.data(), bad.size(), off, p),
                  FrameStatus::Corrupt)
            << "flip at " << byte;
        EXPECT_EQ(off, 0u);
    }
}

TEST(BitIo, AbsurdLengthIsCorruptNotAllocation)
{
    // A length word larger than the frame cap must be rejected
    // before any attempt to read (or allocate) that much.
    std::vector<std::uint8_t> stream(16, 0);
    stream[0] = 0xFF;
    stream[1] = 0xFF;
    stream[2] = 0xFF;
    stream[3] = 0xFF; // length = 0xFFFFFFFF
    std::size_t off = 0;
    std::vector<std::uint8_t> p;
    EXPECT_EQ(readFrame(stream.data(), stream.size(), off, p),
              FrameStatus::Corrupt);
    EXPECT_EQ(off, 0u);
}

TEST(BitIo, FrameStatusNames)
{
    EXPECT_STREQ(frameStatusName(FrameStatus::Ok), "ok");
    EXPECT_STREQ(frameStatusName(FrameStatus::End), "end");
    EXPECT_STREQ(frameStatusName(FrameStatus::Truncated), "truncated");
    EXPECT_STREQ(frameStatusName(FrameStatus::Corrupt), "corrupt");
}

// ---------------------------------------------------------------------
// Wire-grade framing: the same [len][crc][payload] frames arriving in
// arbitrary fragments over a live socket.  The stream parser a server
// builds on readFrame must treat every partial delivery as Truncated
// (wait for more) and every completed delivery as exactly the frames
// that were sent -- never Corrupt, never a duplicate, never UB.
// ---------------------------------------------------------------------

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/fdio.hh"

namespace
{

/** recv exactly `want` bytes from `fd` into the end of `buf`. */
void
recvExactly(int fd, std::vector<std::uint8_t> &buf, std::size_t want)
{
    while (want > 0) {
        std::uint8_t chunk[4096];
        const ssize_t got =
            ::recv(fd, chunk, std::min(want, sizeof(chunk)), 0);
        ASSERT_GT(got, 0) << "socketpair recv failed";
        buf.insert(buf.end(), chunk, chunk + got);
        want -= static_cast<std::size_t>(got);
    }
}

/** Parse every complete frame at the head of `buf`; never Corrupt. */
std::vector<std::vector<std::uint8_t>>
drainFrames(std::vector<std::uint8_t> &buf)
{
    std::vector<std::vector<std::uint8_t>> out;
    std::size_t offset = 0;
    while (true) {
        std::vector<std::uint8_t> payload;
        const FrameStatus status =
            readFrame(buf.data(), buf.size(), offset, payload);
        if (status == FrameStatus::Ok) {
            out.push_back(std::move(payload));
            continue;
        }
        EXPECT_NE(status, FrameStatus::Corrupt)
            << "partial delivery misread as corruption";
        break;
    }
    buf.erase(buf.begin(),
              buf.begin() + static_cast<std::ptrdiff_t>(offset));
    return out;
}

} // namespace

TEST(WireFraming, SocketpairCutAtEveryByteIsTruncatedNeverCorrupt)
{
    // Two back-to-back frames, so a cut can also land *between*
    // frames (the first must then parse while the second waits).
    BitWriter w1, w2;
    w1.putString("the first framed payload");
    w2.putVarint(0xDEADBEEFULL);
    w2.putString("the second");
    std::vector<std::uint8_t> stream;
    appendFrame(stream, w1.bytes());
    appendFrame(stream, w2.bytes());

    for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
        SCOPED_TRACE("cut at byte " + std::to_string(cut));
        int sp[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);

        std::vector<std::uint8_t> in;
        std::vector<std::vector<std::uint8_t>> frames;

        // First fragment: parse whatever is complete; the tail must
        // report Truncated (inside a frame) or End (between frames).
        if (cut > 0) {
            ASSERT_TRUE(writeFully(sp[0], stream.data(), cut));
            recvExactly(sp[1], in, cut);
        }
        auto first = drainFrames(in);
        frames.insert(frames.end(),
                      std::make_move_iterator(first.begin()),
                      std::make_move_iterator(first.end()));

        // Second fragment completes the stream.
        if (cut < stream.size()) {
            ASSERT_TRUE(writeFully(sp[0], stream.data() + cut,
                                   stream.size() - cut));
            recvExactly(sp[1], in, stream.size() - cut);
        }
        auto rest = drainFrames(in);
        frames.insert(frames.end(),
                      std::make_move_iterator(rest.begin()),
                      std::make_move_iterator(rest.end()));

        ASSERT_EQ(frames.size(), 2u);
        EXPECT_EQ(frames[0], w1.bytes());
        EXPECT_EQ(frames[1], w2.bytes());
        EXPECT_TRUE(in.empty());
        ::close(sp[0]);
        ::close(sp[1]);
    }
}

TEST(WireFraming, FlippedBitOverSocketpairIsCorruptNotUB)
{
    BitWriter w;
    w.putString("payload whose checksum must catch every flip");
    std::vector<std::uint8_t> stream;
    appendFrame(stream, w.bytes());

    // Flip each bit of the CRC word and payload in turn (flips in the
    // length word instead turn into Truncated/Corrupt length checks,
    // covered by the frame tests above).
    for (std::size_t bit = 4 * 8; bit < stream.size() * 8; ++bit) {
        std::vector<std::uint8_t> bad = stream;
        bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        int sp[2];
        ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sp), 0);
        ASSERT_TRUE(writeFully(sp[0], bad.data(), bad.size()));
        std::vector<std::uint8_t> in;
        recvExactly(sp[1], in, bad.size());
        std::size_t off = 0;
        std::vector<std::uint8_t> payload;
        EXPECT_EQ(readFrame(in.data(), in.size(), off, payload),
                  FrameStatus::Corrupt)
            << "flipped bit " << bit;
        EXPECT_EQ(off, 0u);
        ::close(sp[0]);
        ::close(sp[1]);
    }
}

// ---------------------------------------------------------------------
// writeFully: short writes and EINTR are resumed, real errors are not.
// ---------------------------------------------------------------------

namespace
{

int dribbleCalls = 0;

/** Transfer at most one byte per call; every third call fakes EINTR. */
ssize_t
dribbleShim(int fd, const void *buf, std::size_t len)
{
    if (++dribbleCalls % 3 == 0) {
        errno = EINTR;
        return -1;
    }
    return ::write(fd, buf, len > 0 ? 1 : 0);
}

ssize_t
enospcShim(int, const void *, std::size_t)
{
    errno = ENOSPC;
    return -1;
}

/** Restore the real write(2) when a test scope ends. */
struct ShimGuard
{
    explicit ShimGuard(fdio_detail::WriteFn fn)
    {
        dribbleCalls = 0;
        fdio_detail::writeShim = fn;
    }
    ~ShimGuard() { fdio_detail::writeShim = &::write; }
};

} // namespace

TEST(Fdio, WriteFullyResumesShortWritesAndEintr)
{
    char path[] = "/tmp/rime_fdio_XXXXXX";
    const int fd = ::mkstemp(path);
    ASSERT_GE(fd, 0);

    std::vector<std::uint8_t> data(257);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7 + 3);
    {
        ShimGuard guard(&dribbleShim);
        EXPECT_TRUE(writeFully(fd, data.data(), data.size()));
    }
    // Every byte landed, in order, exactly once.
    ASSERT_EQ(::lseek(fd, 0, SEEK_SET), 0);
    std::vector<std::uint8_t> back(data.size() + 1);
    const ssize_t got = ::read(fd, back.data(), back.size());
    EXPECT_EQ(static_cast<std::size_t>(got), data.size());
    back.resize(data.size());
    EXPECT_EQ(back, data);
    ::close(fd);
    ::unlink(path);
}

TEST(Fdio, WriteFullyFailsOnRealErrors)
{
    char path[] = "/tmp/rime_fdio_XXXXXX";
    const int fd = ::mkstemp(path);
    ASSERT_GE(fd, 0);
    const std::uint8_t byte = 0x5A;
    {
        ShimGuard guard(&enospcShim);
        errno = 0;
        EXPECT_FALSE(writeFully(fd, &byte, 1));
        EXPECT_EQ(errno, ENOSPC);
    }
    ::close(fd);
    ::unlink(path);
}

TEST(Fdio, FsyncParentDir)
{
    EXPECT_TRUE(fsyncParentDir("/tmp/any_name_will_do"));
    EXPECT_FALSE(fsyncParentDir("/no_such_dir_rime_test/x"));
}
