/**
 * @file
 * Tests of the observability layer: histogram stats, the stat
 * registry (merge/reset/dump round-trips), the Chrome-tracing span
 * tracer, the strict environment parsers, the ThreadPool reentrancy
 * guard, and the determinism contract -- stat dumps are bit-identical
 * for any host thread count.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "common/env.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "common/stat_registry.hh"
#include "common/stats.hh"
#include "common/trace.hh"
#include "rime/api.hh"
#include "rime/ops.hh"
#include "rimehw/chip.hh"

using namespace rime;

namespace
{

/**
 * Minimal recursive-descent JSON validator: enough of RFC 8259 to
 * prove that the stat and trace dumps parse, without a JSON library
 * dependency.
 */
class JsonValidator
{
  public:
    explicit JsonValidator(std::string text) : text_(std::move(text)) {}

    bool
    valid()
    {
        skipWs();
        if (!parseValue())
            return false;
        skipWs();
        return pos_ == text_.size();
    }

  private:
    bool eof() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!eof() &&
               std::isspace(static_cast<unsigned char>(peek()))) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        if (eof() || peek() != c)
            return false;
        ++pos_;
        return true;
    }

    bool
    parseValue()
    {
        if (eof())
            return false;
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
            return parseLiteral("true");
          case 'f':
            return parseLiteral("false");
          case 'n':
            return parseLiteral("null");
          default:
            return parseNumber();
        }
    }

    bool
    parseLiteral(const char *lit)
    {
        const std::size_t n = std::strlen(lit);
        if (text_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    parseObject()
    {
        if (!consume('{'))
            return false;
        skipWs();
        if (consume('}'))
            return true;
        while (true) {
            skipWs();
            if (!parseString())
                return false;
            skipWs();
            if (!consume(':'))
                return false;
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (consume('}'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseArray()
    {
        if (!consume('['))
            return false;
        skipWs();
        if (consume(']'))
            return true;
        while (true) {
            skipWs();
            if (!parseValue())
                return false;
            skipWs();
            if (consume(']'))
                return true;
            if (!consume(','))
                return false;
        }
    }

    bool
    parseString()
    {
        if (!consume('"'))
            return false;
        while (!eof()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (eof())
                    return false;
                ++pos_;
            }
        }
        return false;
    }

    bool
    parseNumber()
    {
        bool digits = false;
        const auto digitRun = [&] {
            while (!eof() &&
                   std::isdigit(static_cast<unsigned char>(peek()))) {
                ++pos_;
                digits = true;
            }
        };
        if (!eof() && peek() == '-')
            ++pos_;
        digitRun();
        if (!digits)
            return false;
        if (!eof() && peek() == '.') {
            ++pos_;
            digits = false;
            digitRun();
            if (!digits)
                return false;
        }
        if (!eof() && (peek() == 'e' || peek() == 'E')) {
            ++pos_;
            if (!eof() && (peek() == '-' || peek() == '+'))
                ++pos_;
            digits = false;
            digitRun();
            if (!digits)
                return false;
        }
        return true;
    }

    std::string text_;
    std::size_t pos_ = 0;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

} // namespace

// ---------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------

TEST(Histogram, EmptyIsAllZero)
{
    StatHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);
    EXPECT_DOUBLE_EQ(h.max(), 0.0);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_TRUE(h.buckets().empty());
    h.reset(); // reset of an empty histogram is a no-op
    EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, BucketEdges)
{
    EXPECT_EQ(StatHistogram::bucketOf(0.0), 0);
    EXPECT_EQ(StatHistogram::bucketOf(0.99), 0);
    EXPECT_EQ(StatHistogram::bucketOf(1.0), 1);
    EXPECT_EQ(StatHistogram::bucketOf(1.99), 1);
    EXPECT_EQ(StatHistogram::bucketOf(2.0), 2);
    EXPECT_EQ(StatHistogram::bucketOf(3.0), 2);
    EXPECT_EQ(StatHistogram::bucketOf(4.0), 3);
    EXPECT_EQ(StatHistogram::bucketOf(1024.0), 11);

    EXPECT_EQ(StatHistogram::bucketBounds(0),
              (std::pair<double, double>{0.0, 1.0}));
    EXPECT_EQ(StatHistogram::bucketBounds(1),
              (std::pair<double, double>{1.0, 2.0}));
    EXPECT_EQ(StatHistogram::bucketBounds(3),
              (std::pair<double, double>{4.0, 8.0}));
}

TEST(Histogram, SingleBucket)
{
    StatHistogram h;
    h.record(1.5);
    h.record(1.5);
    h.record(1.5);
    EXPECT_EQ(h.count(), 3u);
    EXPECT_DOUBLE_EQ(h.min(), 1.5);
    EXPECT_DOUBLE_EQ(h.max(), 1.5);
    EXPECT_DOUBLE_EQ(h.mean(), 1.5);
    ASSERT_EQ(h.buckets().size(), 1u);
    EXPECT_EQ(h.buckets().at(1), 3u);
}

TEST(Histogram, WeightMergeAndReset)
{
    StatHistogram a;
    a.record(2.0, 4); // bucket 2, weight 4
    a.record(0.25);   // bucket 0
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.sum(), 8.25);
    a.record(1.0, 0); // zero weight: dropped entirely
    EXPECT_EQ(a.count(), 5u);

    StatHistogram b;
    b.record(100.0);
    b.merge(a);
    EXPECT_EQ(b.count(), 6u);
    EXPECT_DOUBLE_EQ(b.min(), 0.25);
    EXPECT_DOUBLE_EQ(b.max(), 100.0);
    EXPECT_EQ(b.buckets().at(2), 4u);

    b.reset();
    EXPECT_EQ(b.count(), 0u);
    EXPECT_TRUE(b.buckets().empty());
}

TEST(Histogram, GroupMergeAndResetCarryHistograms)
{
    StatGroup a("a");
    StatGroup b("b");
    a.hist("lat").record(4.0);
    b.hist("lat").record(16.0);
    b.inc("n", 2);
    a.merge(b);
    EXPECT_EQ(a.hist("lat").count(), 2u);
    EXPECT_DOUBLE_EQ(a.hist("lat").max(), 16.0);
    EXPECT_TRUE(a.hasHist("lat"));
    EXPECT_FALSE(a.hasHist("other"));
    a.reset();
    EXPECT_EQ(a.hist("lat").count(), 0u);
    EXPECT_DOUBLE_EQ(a.get("n"), 0.0);
}

// ---------------------------------------------------------------------
// Stat registry
// ---------------------------------------------------------------------

TEST(Registry, AttachedShadowsOwnedAndDetach)
{
    StatRegistry reg;
    reg.group("chip").inc("x", 1);
    EXPECT_TRUE(reg.has("chip"));

    StatGroup live("chip");
    live.inc("x", 10);
    reg.attach("chip", live);

    std::ostringstream os;
    reg.dumpText(os);
    // The attached (live) group shadows the owned accumulator.
    EXPECT_EQ(os.str(), "chip.x 10\n");

    reg.detach("chip");
    std::ostringstream os2;
    reg.dumpText(os2);
    EXPECT_EQ(os2.str(), "chip.x 1\n");
}

TEST(Registry, MergeGroupAndMergeRegistry)
{
    StatRegistry a;
    StatGroup g;
    g.inc("scans", 3);
    g.hist("lat").record(8.0);
    a.mergeGroup("chip.0", g);
    a.mergeGroup("chip.0", g);
    EXPECT_DOUBLE_EQ(a.group("chip.0").get("scans"), 6.0);
    EXPECT_EQ(a.group("chip.0").hist("lat").count(), 2u);

    StatRegistry b;
    b.mergeRegistry(a);
    b.mergeRegistry(a);
    EXPECT_DOUBLE_EQ(b.group("chip.0").get("scans"), 12.0);
    EXPECT_THROW(b.mergeRegistry(b), FatalError);

    b.resetAll();
    EXPECT_DOUBLE_EQ(b.group("chip.0").get("scans"), 0.0);
    EXPECT_EQ(b.group("chip.0").hist("lat").count(), 0u);
}

TEST(Registry, JsonDumpParsesAndNestsPaths)
{
    StatRegistry reg;
    reg.group("chip.0").inc("scans", 7);
    reg.group("chip.1").inc("scans", 9);
    reg.group("driver").inc("allocCalls", 2);
    reg.group("driver").hist("allocPages").record(3.0);

    std::ostringstream os;
    reg.dumpJson(os);
    const std::string json = os.str();

    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    // Dotted paths become nested objects with reserved payload keys.
    EXPECT_NE(json.find("\"chip\""), std::string::npos);
    EXPECT_NE(json.find("\"0\""), std::string::npos);
    EXPECT_NE(json.find("\"stats\""), std::string::npos);
    EXPECT_NE(json.find("\"hists\""), std::string::npos);
    EXPECT_NE(json.find("\"scans\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"scans\": 9"), std::string::npos);
    EXPECT_NE(json.find("\"allocPages\""), std::string::npos);
    EXPECT_NE(json.find("\"buckets\""), std::string::npos);
}

TEST(Registry, JsonExcludesWallClockByDefault)
{
    StatRegistry reg;
    reg.group("chip").inc("scans", 1);
    reg.group("chip").inc("scanWallNs", 12345);

    std::ostringstream det;
    reg.dumpJson(det);
    EXPECT_EQ(det.str().find("scanWallNs"), std::string::npos);
    EXPECT_NE(det.str().find("\"scans\""), std::string::npos);

    std::ostringstream full;
    reg.dumpJson(full, /*include_wall_clock=*/true);
    EXPECT_NE(full.str().find("scanWallNs"), std::string::npos);
    EXPECT_TRUE(JsonValidator(full.str()).valid());

    EXPECT_TRUE(isWallClockStat("scanWallNs"));
    EXPECT_FALSE(isWallClockStat("scanSteps"));
}

// ---------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------

TEST(Trace, FileIsValidChromeTracingJson)
{
    const std::string path = "test_observability_trace.json";
    {
        Tracer tracer(path);
        ASSERT_TRUE(tracer.enabled());
        {
            TraceSpan span(tracer, "chip", "scan");
            span.arg("steps", std::uint64_t{32});
            span.arg("found", true);
            span.arg("mode", "min");
            span.arg("skew", 0.5);
        }
        tracer.instant("fault", "rowRemap",
                       traceArgs({{"unit", 3}, {"row", 17}}));
        tracer.counter("driver", "allocatedBytes", 4096.0);
        EXPECT_EQ(tracer.eventCount(), 3u);
    } // destructor flushes

    const std::string json = readFile(path);
    ASSERT_FALSE(json.empty());
    EXPECT_TRUE(JsonValidator(json).valid()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"C\""), std::string::npos);
    EXPECT_NE(json.find("\"steps\": 32"), std::string::npos);
    EXPECT_NE(json.find("\"unit\": 3"), std::string::npos);
    std::remove(path.c_str());
}

TEST(Trace, DisabledTracerCollectsNothing)
{
    Tracer tracer("");
    EXPECT_FALSE(tracer.enabled());
    {
        TraceSpan span(tracer, "chip", "scan");
        span.arg("steps", std::uint64_t{8});
    }
    tracer.instant("cat", "evt");
    tracer.counter("cat", "ctr", 1.0);
    EXPECT_EQ(tracer.eventCount(), 0u);
}

// ---------------------------------------------------------------------
// Strict env parsing
// ---------------------------------------------------------------------

TEST(Env, StringDoubleAndU64)
{
    unsetenv("RIME_TEST_KNOB");
    EXPECT_FALSE(envString("RIME_TEST_KNOB").has_value());
    EXPECT_DOUBLE_EQ(envDouble("RIME_TEST_KNOB", 1.5), 1.5);
    EXPECT_EQ(envU64("RIME_TEST_KNOB", 7), 7u);

    setenv("RIME_TEST_KNOB", "2.5", 1);
    EXPECT_EQ(envString("RIME_TEST_KNOB").value(), "2.5");
    EXPECT_DOUBLE_EQ(envDouble("RIME_TEST_KNOB", 1.0), 2.5);

    // Trailing garbage is a user error, not a silent fallback.
    setenv("RIME_TEST_KNOB", "0.5x", 1);
    EXPECT_THROW(envDouble("RIME_TEST_KNOB", 1.0), FatalError);

    setenv("RIME_TEST_KNOB", "42", 1);
    EXPECT_EQ(envU64("RIME_TEST_KNOB", 0), 42u);
    setenv("RIME_TEST_KNOB", "four", 1);
    EXPECT_THROW(envU64("RIME_TEST_KNOB", 0), FatalError);
    setenv("RIME_TEST_KNOB", "-3", 1);
    EXPECT_THROW(envU64("RIME_TEST_KNOB", 0), FatalError);
    unsetenv("RIME_TEST_KNOB");
}

// ---------------------------------------------------------------------
// ThreadPool reentrancy guard
// ---------------------------------------------------------------------

TEST(ThreadPoolDeathTest, ReentrantRunPanics)
{
    // A serial pool (no workers) would happen to execute a nested run
    // correctly; the guard must panic anyway so the misuse cannot
    // hide behind a thread-count setting.
    ThreadPool pool(1);
    EXPECT_DEATH(
        pool.run(1, [&](unsigned) { pool.run(1, [](unsigned) {}); }),
        "not reentrant");
}

// ---------------------------------------------------------------------
// Library-level registry and kernel profiling
// ---------------------------------------------------------------------

TEST(Library, RegistryTreeAndPublishOnce)
{
    const double before =
        StatRegistry::process().group("api").get("extractCalls");
    std::vector<std::uint64_t> raws{5, 3, 9, 1, 7, 2, 8, 6};
    {
        RimeLibrary lib;
        EXPECT_TRUE(lib.statRegistry().has("api"));
        EXPECT_TRUE(lib.statRegistry().has("driver"));
        EXPECT_TRUE(lib.statRegistry().has("device"));
        EXPECT_TRUE(lib.statRegistry().has("chip.0"));

        const auto result = rimeSort(lib, raws,
                                     KeyMode::UnsignedFixed, 32);
        ASSERT_EQ(result.values.size(), raws.size());
        EXPECT_GE(result.hostSeconds, 0.0);
        EXPECT_GT(result.loadSeconds, 0.0);
        // One extract per produced value.
        EXPECT_DOUBLE_EQ(lib.apiStats().get("extractCalls"),
                         static_cast<double>(raws.size()));
        EXPECT_EQ(lib.apiStats().hist("extractLatencyTicks").count(),
                  raws.size());
        EXPECT_GT(lib.driver().stats().get("allocCalls"), 0.0);

        lib.publishStats();
        const double once =
            StatRegistry::process().group("api").get("extractCalls");
        EXPECT_GT(once, before);
        lib.publishStats(); // manual + destructor: still counted once
        EXPECT_DOUBLE_EQ(
            StatRegistry::process().group("api").get("extractCalls"),
            once);

        std::ostringstream os;
        lib.statRegistry().dumpJson(os);
        EXPECT_TRUE(JsonValidator(os.str()).valid()) << os.str();
    }
    // Destruction after an explicit publish must not double-count.
    const double after =
        StatRegistry::process().group("api").get("extractCalls");
    EXPECT_DOUBLE_EQ(after, before + 8.0);
}

// ---------------------------------------------------------------------
// Determinism: stat dumps bit-identical across host thread counts
// ---------------------------------------------------------------------

TEST(Determinism, ChipStatDumpIdenticalAcrossThreadCounts)
{
    const auto run = [](unsigned threads) {
        rimehw::RimeGeometry g;
        g.banksPerChip = 4;
        g.subbanksPerBank = 8;
        rimehw::RimeChip chip(g, rimehw::RimeTimingParams{}, threads);
        chip.configure(32, KeyMode::UnsignedFixed);
        Rng rng(7);
        const std::uint64_t n = 2048;
        for (std::uint64_t i = 0; i < n; ++i)
            chip.writeValue(i, rng() & 0xFFFFFFFF);
        chip.initRange(0, n);
        for (int i = 0; i < 6; ++i) {
            const auto r = chip.extract(0, n, false);
            EXPECT_TRUE(r.found);
        }
        StatRegistry reg;
        reg.attach("chip", chip.stats());
        std::ostringstream os;
        reg.dumpJson(os);
        return os.str();
    };
    const std::string serial = run(1);
    const std::string parallel = run(4);
    EXPECT_EQ(serial, parallel);
    EXPECT_TRUE(JsonValidator(serial).valid());
    // The wall-clock stat was recorded but must not appear.
    EXPECT_EQ(serial.find("WallNs"), std::string::npos);
    EXPECT_NE(serial.find("scanSurvivors"), std::string::npos);
    EXPECT_NE(serial.find("scanStepsPerExtract"), std::string::npos);
}
