/** @file Unit tests for the endurance / lifetime tracker. */

#include <gtest/gtest.h>

#include <cmath>

#include "rimehw/endurance.hh"

using namespace rime::rimehw;

TEST(Endurance, CountsWritesPerBlock)
{
    EnduranceTracker tracker(512);
    tracker.recordWrite(0, 4);
    tracker.recordWrite(100, 4);
    tracker.recordWrite(600, 4);
    EXPECT_EQ(tracker.totalWrites(), 3u);
    EXPECT_EQ(tracker.touchedBlocks(), 2u);
    EXPECT_EQ(tracker.maxBlockWrites(), 2u);
}

TEST(Endurance, SpanningWriteTouchesBothBlocks)
{
    EnduranceTracker tracker(512);
    tracker.recordWrite(510, 8); // crosses the 512-byte boundary
    EXPECT_EQ(tracker.touchedBlocks(), 2u);
}

TEST(Endurance, LifetimeProjection)
{
    EnduranceTracker tracker(512);
    // 1000 writes to one block over 1 simulated second.
    for (int i = 0; i < 1000; ++i)
        tracker.recordWrite(0, 4);
    // 1e8 endurance / 1e3 writes-per-second = 1e5 seconds.
    const double years = tracker.lifetimeYears(1.0, 1e8);
    EXPECT_NEAR(years, 1e5 / (365.25 * 24 * 3600), 1e-9);
}

TEST(Endurance, NoWritesMeansInfiniteLifetime)
{
    EnduranceTracker tracker;
    EXPECT_TRUE(std::isinf(tracker.lifetimeYears(10.0)));
}

TEST(Endurance, PaperLifetimeClaim)
{
    // Section VII-C: with 1e8 endurance the paper reports >= 376
    // years.  That requires the hottest block to see fewer than
    // ~8.4e-3 writes per simulated second; verify the arithmetic.
    EnduranceTracker tracker(512);
    for (int i = 0; i < 84; ++i)
        tracker.recordWrite(0, 4);
    const double years = tracker.lifetimeYears(10000.0, 1e8);
    EXPECT_GT(years, 376.0);
}

TEST(Endurance, Reset)
{
    EnduranceTracker tracker;
    tracker.recordWrite(0, 4);
    tracker.reset();
    EXPECT_EQ(tracker.totalWrites(), 0u);
    EXPECT_EQ(tracker.maxBlockWrites(), 0u);
}

TEST(Endurance, ZeroByteWriteStillWearsItsBlock)
{
    // A zero-length write is a degenerate command that still cycles
    // the target row once; it must not underflow into a write of
    // every block.
    EnduranceTracker tracker(512);
    tracker.recordWrite(100, 0);
    EXPECT_EQ(tracker.totalWrites(), 1u);
    EXPECT_EQ(tracker.touchedBlocks(), 1u);
    EXPECT_EQ(tracker.blockWrites(100), 1u);
    EXPECT_EQ(tracker.blockWrites(600), 0u);
}

TEST(Endurance, WriteStraddlingManyBlocksWearsEach)
{
    EnduranceTracker tracker(512);
    // [500, 1600) covers blocks 0, 1, 2, and 3.
    tracker.recordWrite(500, 1100);
    EXPECT_EQ(tracker.touchedBlocks(), 4u);
    EXPECT_EQ(tracker.totalWrites(), 4u);
    for (const std::uint64_t off : {0u, 512u, 1024u, 1536u})
        EXPECT_EQ(tracker.blockWrites(off), 1u) << off;
    // An exact block-boundary end touches only the blocks it covers.
    tracker.recordWrite(0, 512);
    EXPECT_EQ(tracker.blockWrites(0), 2u);
    EXPECT_EQ(tracker.blockWrites(512), 1u);
}

TEST(Endurance, LifetimeEdgeCases)
{
    EnduranceTracker tracker(512);
    // No writes: infinite, regardless of elapsed time.
    EXPECT_TRUE(std::isinf(tracker.lifetimeYears(0.0)));
    tracker.recordWrite(0, 4);
    // Zero or negative elapsed time cannot produce a finite rate.
    EXPECT_TRUE(std::isinf(tracker.lifetimeYears(0.0)));
    EXPECT_TRUE(std::isinf(tracker.lifetimeYears(-1.0)));
    EXPECT_GT(tracker.lifetimeYears(1.0), 0.0);
}

TEST(Endurance, BlockOfMapsOffsetsToBlocks)
{
    EnduranceTracker tracker(512);
    EXPECT_EQ(tracker.blockOf(0), 0u);
    EXPECT_EQ(tracker.blockOf(511), 0u);
    EXPECT_EQ(tracker.blockOf(512), 1u);
    EXPECT_EQ(tracker.blockOf(5 * 512 + 17), 5u);
}
