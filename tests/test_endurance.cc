/** @file Unit tests for the endurance / lifetime tracker. */

#include <gtest/gtest.h>

#include <cmath>

#include "rimehw/endurance.hh"

using namespace rime::rimehw;

TEST(Endurance, CountsWritesPerBlock)
{
    EnduranceTracker tracker(512);
    tracker.recordWrite(0, 4);
    tracker.recordWrite(100, 4);
    tracker.recordWrite(600, 4);
    EXPECT_EQ(tracker.totalWrites(), 3u);
    EXPECT_EQ(tracker.touchedBlocks(), 2u);
    EXPECT_EQ(tracker.maxBlockWrites(), 2u);
}

TEST(Endurance, SpanningWriteTouchesBothBlocks)
{
    EnduranceTracker tracker(512);
    tracker.recordWrite(510, 8); // crosses the 512-byte boundary
    EXPECT_EQ(tracker.touchedBlocks(), 2u);
}

TEST(Endurance, LifetimeProjection)
{
    EnduranceTracker tracker(512);
    // 1000 writes to one block over 1 simulated second.
    for (int i = 0; i < 1000; ++i)
        tracker.recordWrite(0, 4);
    // 1e8 endurance / 1e3 writes-per-second = 1e5 seconds.
    const double years = tracker.lifetimeYears(1.0, 1e8);
    EXPECT_NEAR(years, 1e5 / (365.25 * 24 * 3600), 1e-9);
}

TEST(Endurance, NoWritesMeansInfiniteLifetime)
{
    EnduranceTracker tracker;
    EXPECT_TRUE(std::isinf(tracker.lifetimeYears(10.0)));
}

TEST(Endurance, PaperLifetimeClaim)
{
    // Section VII-C: with 1e8 endurance the paper reports >= 376
    // years.  That requires the hottest block to see fewer than
    // ~8.4e-3 writes per simulated second; verify the arithmetic.
    EnduranceTracker tracker(512);
    for (int i = 0; i < 84; ++i)
        tracker.recordWrite(0, 4);
    const double years = tracker.lifetimeYears(10000.0, 1e8);
    EXPECT_GT(years, 376.0);
}

TEST(Endurance, Reset)
{
    EnduranceTracker tracker;
    tracker.recordWrite(0, 4);
    tracker.reset();
    EXPECT_EQ(tracker.totalWrites(), 0u);
    EXPECT_EQ(tracker.maxBlockWrites(), 0u);
}
