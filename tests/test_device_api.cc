/**
 * @file
 * End-to-end tests of the RIME device + API library: multi-chip
 * striping, the Figure-14 buffered merge, the paper's Figure-12 usage
 * pattern, live stores during an operation, timing monotonicity, and
 * agreement between the fast and bit-level device configurations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hh"
#include "rime/api.hh"

using namespace rime;

namespace
{

LibraryConfig
smallConfig(bool bit_level = false, unsigned chips = 4)
{
    LibraryConfig cfg;
    cfg.device.channels = 1;
    cfg.device.bitLevel = bit_level;
    cfg.device.geometry.chipsPerChannel = chips;
    cfg.device.geometry.banksPerChip = 2;
    cfg.device.geometry.subbanksPerBank = 4;
    cfg.device.geometry.arrayRows = 64;
    cfg.device.geometry.arrayCols = 64;
    cfg.driver.startupPages = 16;
    cfg.driver.growthPages = 16;
    return cfg;
}

std::vector<std::uint64_t>
randomU32(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng() & 0xFFFFFFFFULL;
    return v;
}

} // namespace

TEST(Device, StripingRoundTrips)
{
    RimeDevice dev(smallConfig().device);
    dev.configure(32, KeyMode::UnsignedFixed);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const ChipLoc loc = dev.locate(i);
        EXPECT_EQ(dev.globalIndex(loc.chip, loc.local), i);
        EXPECT_LT(loc.chip, dev.totalChips());
    }
}

TEST(Device, LocalRangeCoversExactlyTheRange)
{
    RimeDevice dev(smallConfig().device);
    dev.configure(32, KeyMode::UnsignedFixed);
    const std::uint64_t begin = 13;
    const std::uint64_t end = 77;
    std::uint64_t total = 0;
    for (unsigned c = 0; c < dev.totalChips(); ++c) {
        const LocalRange lr = dev.localRange(c, begin, end);
        total += lr.hi - lr.lo;
        // Every local index in [lo, hi) maps back into [begin, end).
        for (std::uint64_t l = lr.lo; l < lr.hi; ++l) {
            const std::uint64_t g = dev.globalIndex(c, l);
            EXPECT_GE(g, begin);
            EXPECT_LT(g, end);
        }
    }
    EXPECT_EQ(total, end - begin);
}

TEST(Api, Figure12SortedListPattern)
{
    // The paper's example: find the 100 smallest values of a region.
    RimeLibrary lib(smallConfig());
    const std::size_t n = 1000;
    auto values = randomU32(n, 31);

    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    const Addr end = *start + n * 4;
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*start, values);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);

    std::vector<std::uint64_t> sorted_list;
    for (int i = 0; i < 100; ++i) {
        const auto item = lib.rimeMin(*start, end);
        ASSERT_TRUE(item);
        sorted_list.push_back(item->raw);
    }
    auto expect = values;
    std::sort(expect.begin(), expect.end());
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(sorted_list[i], expect[i]) << i;
    lib.rimeFree(*start);
}

TEST(Api, MinAddressesIdentifyTheSource)
{
    RimeLibrary lib(smallConfig());
    const std::size_t n = 64;
    auto values = randomU32(n, 33);
    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    lib.rimeInit(*start, *start + n * 4, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*start, values);
    lib.rimeInit(*start, *start + n * 4, KeyMode::UnsignedFixed, 32);
    for (std::size_t i = 0; i < n; ++i) {
        const auto item = lib.rimeMin(*start, *start + n * 4);
        ASSERT_TRUE(item);
        // The reported address must hold the reported value.
        const std::uint64_t idx = (item->index - *start) / 4;
        EXPECT_EQ(values[idx], item->raw);
    }
}

TEST(Api, MaxStreamsDescending)
{
    RimeLibrary lib(smallConfig());
    const std::size_t n = 200;
    auto values = randomU32(n, 35);
    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    const Addr end = *start + n * 4;
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*start, values);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    std::uint64_t prev = ~0ULL;
    for (std::size_t i = 0; i < n; ++i) {
        const auto item = lib.rimeMax(*start, end);
        ASSERT_TRUE(item);
        EXPECT_LE(item->raw, prev);
        prev = item->raw;
    }
    EXPECT_FALSE(lib.rimeMax(*start, end));
}

TEST(Api, SignedAndFloatModes)
{
    RimeLibrary lib(smallConfig());
    // Signed.
    {
        std::vector<std::uint64_t> values;
        for (const int v : {5, -3, 0, -100, 42, -1})
            values.push_back(signedToRaw(v, 32));
        const auto start = lib.rimeMalloc(values.size() * 4);
        ASSERT_TRUE(start);
        const Addr end = *start + values.size() * 4;
        lib.rimeInit(*start, end, KeyMode::SignedFixed, 32);
        lib.storeArray(*start, values);
        lib.rimeInit(*start, end, KeyMode::SignedFixed, 32);
        const auto item = lib.rimeMin(*start, end);
        ASSERT_TRUE(item);
        EXPECT_EQ(rawToSigned(item->raw, 32), -100);
        lib.rimeFree(*start);
    }
    // Float.
    {
        std::vector<std::uint64_t> values;
        for (const float f : {1.5f, -2.25f, 0.0f, 1e10f, -1e-10f})
            values.push_back(floatToRaw(f));
        const auto start = lib.rimeMalloc(values.size() * 4);
        ASSERT_TRUE(start);
        const Addr end = *start + values.size() * 4;
        lib.rimeInit(*start, end, KeyMode::Float, 32);
        lib.storeArray(*start, values);
        lib.rimeInit(*start, end, KeyMode::Float, 32);
        const auto mn = lib.rimeMin(*start, end);
        ASSERT_TRUE(mn);
        EXPECT_FLOAT_EQ(
            rawToFloat(static_cast<std::uint32_t>(mn->raw)), -2.25f);
        const auto mx = lib.rimeMax(*start, end);
        ASSERT_TRUE(mx);
        EXPECT_FLOAT_EQ(
            rawToFloat(static_cast<std::uint32_t>(mx->raw)), 1e10f);
        lib.rimeFree(*start);
    }
}

TEST(Api, LiveStoreSurfacesImmediately)
{
    // The strict-priority-queue add path.
    RimeLibrary lib(smallConfig());
    const std::size_t n = 16;
    std::vector<std::uint64_t> values(n, 1000);
    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    const Addr end = *start + n * 4;
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*start, values);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);

    auto item = lib.rimeMin(*start, end);
    ASSERT_TRUE(item);
    EXPECT_EQ(item->raw, 1000u);
    // Insert a smaller packet at the extracted slot's neighbour.
    lib.store(*start + 4, 7);
    item = lib.rimeMin(*start, end);
    ASSERT_TRUE(item);
    EXPECT_EQ(item->raw, 7u);
}

TEST(Api, ClockAdvancesMonotonically)
{
    RimeLibrary lib(smallConfig());
    const std::size_t n = 256;
    auto values = randomU32(n, 41);
    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    const Addr end = *start + n * 4;
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    Tick prev = lib.now();
    lib.storeArray(*start, values);
    EXPECT_GT(lib.now(), prev);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    prev = lib.now();
    for (std::size_t i = 0; i < n; ++i) {
        ASSERT_TRUE(lib.rimeMin(*start, end));
        EXPECT_GT(lib.now(), prev);
        prev = lib.now();
    }
    EXPECT_GT(lib.energyPJ(), 0.0);
}

TEST(Api, BitLevelAndFastDevicesAgree)
{
    RimeLibrary fast(smallConfig(false));
    RimeLibrary exact(smallConfig(true));
    const std::size_t n = 128;
    auto values = randomU32(n, 43);
    for (RimeLibrary *lib : {&fast, &exact}) {
        const auto start = lib->rimeMalloc(n * 4);
        ASSERT_TRUE(start);
        const Addr end = *start + n * 4;
        lib->rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
        lib->storeArray(*start, values);
        lib->rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    }
    const Addr fs = 0, es = 0; // both allocate at offset 0
    for (std::size_t i = 0; i < n; ++i) {
        const auto a = fast.rimeMin(fs, fs + n * 4);
        const auto b = exact.rimeMin(es, es + n * 4);
        ASSERT_TRUE(a && b);
        EXPECT_EQ(a->raw, b->raw) << i;
        EXPECT_EQ(a->index, b->index) << i;
    }
    EXPECT_EQ(fast.now(), exact.now());
}

TEST(Api, ReInitRestartsTheStream)
{
    RimeLibrary lib(smallConfig());
    const std::size_t n = 32;
    auto values = randomU32(n, 47);
    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    const Addr end = *start + n * 4;
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*start, values);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    const auto first = lib.rimeMin(*start, end);
    lib.rimeMin(*start, end);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    const auto again = lib.rimeMin(*start, end);
    ASSERT_TRUE(first && again);
    EXPECT_EQ(first->raw, again->raw);
    EXPECT_EQ(first->index, again->index);
}

TEST(Api, AllocationFailureReturnsNull)
{
    auto cfg = smallConfig();
    LibraryConfig tiny = cfg;
    RimeLibrary lib(tiny);
    // Ask for more than the device capacity.
    const auto cap = lib.device().capacityBytes();
    EXPECT_FALSE(lib.rimeMalloc(cap + (1 << 20)));
}
