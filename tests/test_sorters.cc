/**
 * @file
 * Tests of the instrumented baseline sorting algorithms: correctness
 * on random and adversarial inputs, operation counting, access-stream
 * generation, and sanity of the traffic scaling model.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hh"
#include "sort/parallel_model.hh"
#include "sort/sorters.hh"

using namespace rime;
using namespace rime::sort;

namespace
{

Keys
randomKeys(std::size_t n, std::uint64_t seed,
           std::uint32_t mask = ~0u)
{
    Rng rng(seed);
    Keys keys(n);
    for (auto &k : keys)
        k = static_cast<std::uint32_t>(rng()) & mask;
    return keys;
}

class SorterTest : public ::testing::TestWithParam<Algorithm>
{};

} // namespace

TEST_P(SorterTest, SortsRandomInput)
{
    NullSink sink;
    Keys keys = randomKeys(10000, 3);
    Keys expect = keys;
    std::sort(expect.begin(), expect.end());
    runSort(GetParam(), keys, 0, sink);
    EXPECT_EQ(keys, expect);
}

TEST_P(SorterTest, SortsAdversarialInputs)
{
    NullSink sink;
    for (int shape = 0; shape < 5; ++shape) {
        Keys keys;
        const std::size_t n = 2000;
        switch (shape) {
          case 0: // already sorted
            for (std::size_t i = 0; i < n; ++i)
                keys.push_back(static_cast<std::uint32_t>(i));
            break;
          case 1: // reverse sorted
            for (std::size_t i = n; i-- > 0;)
                keys.push_back(static_cast<std::uint32_t>(i));
            break;
          case 2: // all equal
            keys.assign(n, 7);
            break;
          case 3: // two values
            keys = randomKeys(n, 5, 1);
            break;
          case 4: // sawtooth
            for (std::size_t i = 0; i < n; ++i)
                keys.push_back(static_cast<std::uint32_t>(i % 17));
            break;
        }
        Keys expect = keys;
        std::sort(expect.begin(), expect.end());
        runSort(GetParam(), keys, 0, sink);
        EXPECT_EQ(keys, expect) << "shape " << shape;
    }
}

TEST_P(SorterTest, TinyInputs)
{
    NullSink sink;
    for (std::size_t n = 0; n <= 4; ++n) {
        Keys keys = randomKeys(n, 40 + n);
        Keys expect = keys;
        std::sort(expect.begin(), expect.end());
        runSort(GetParam(), keys, 0, sink);
        EXPECT_EQ(keys, expect) << n;
    }
}

TEST_P(SorterTest, GeneratesAccesses)
{
    CountingSink sink;
    Keys keys = randomKeys(4096, 7);
    const auto ops = runSort(GetParam(), keys, 0, sink);
    EXPECT_GT(sink.loads(), 4096u);
    EXPECT_GT(sink.stores(), 0u);
    EXPECT_GT(ops.instructions(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SorterTest,
    ::testing::Values(Algorithm::Mergesort, Algorithm::Quicksort,
                      Algorithm::Radixsort, Algorithm::Heapsort),
    [](const auto &info) {
        switch (info.param) {
          case Algorithm::Mergesort: return "Mergesort";
          case Algorithm::Quicksort: return "Quicksort";
          case Algorithm::Radixsort: return "Radixsort";
          case Algorithm::Heapsort: return "Heapsort";
        }
        return "Unknown";
    });

TEST(SortOps, ComparisonCountsAreOrderNlogN)
{
    NullSink sink;
    Keys keys = randomKeys(1 << 14, 9);
    const auto ops = runSort(Algorithm::Quicksort, keys, 0, sink);
    const double n = 1 << 14;
    EXPECT_GT(ops.comparisons, n * std::log2(n) * 0.6);
    EXPECT_LT(ops.comparisons, n * std::log2(n) * 4.0);
}

TEST(SortOps, RadixsortDoesNoComparisons)
{
    NullSink sink;
    Keys keys = randomKeys(4096, 11);
    const auto ops = runSort(Algorithm::Radixsort, keys, 0, sink);
    EXPECT_EQ(ops.comparisons, 0u);
    EXPECT_EQ(ops.passes, 4u);
}

TEST(SortModel, TrafficGrowsWithDataSize)
{
    SortModel::Config cfg;
    cfg.sampleCap = 1 << 16;
    SortModel model(cfg);
    for (const auto algo : allAlgorithms) {
        const auto small = model.profile(algo, 1 << 16, 1);
        const auto large = model.profile(algo, 1 << 20, 1);
        EXPECT_GT(large.memReads + large.memWrites,
                  small.memReads + small.memWrites)
            << algorithmName(algo);
    }
}

TEST(SortModel, MoreCoresMoreTotalAccesses)
{
    // Figure 1(b): total memory accesses grow with the core count
    // (cross-core combining rounds).
    SortModel::Config cfg;
    cfg.sampleCap = 1 << 15;
    SortModel model(cfg);
    const auto algo = Algorithm::Mergesort;
    const auto c1 = model.profile(algo, 8 << 20, 1);
    const auto c16 = model.profile(algo, 8 << 20, 16);
    const auto c64 = model.profile(algo, 8 << 20, 64);
    EXPECT_GT(c16.memReads + c16.memWrites,
              c1.memReads + c1.memWrites);
    EXPECT_GT(c64.memReads + c64.memWrites,
              c16.memReads + c16.memWrites);
}

TEST(SortModel, ExtrapolationIsConsistentAtTheBoundary)
{
    // Traffic predicted with a capped sample should be within a
    // factor ~2 of the fully simulated value one octave up.  The
    // scaling law only holds for DRAM-bound samples, so shrink the
    // modeled L2 well below the sample working set (the production
    // config enforces sampleCap >> L2 instead).
    cachesim::CacheConfig small_l2 = cachesim::CacheConfig::l2();
    small_l2.sizeBytes = 256 * 1024;
    SortModel::Config exact_cfg;
    exact_cfg.sampleCap = 1 << 21;
    exact_cfg.l2 = small_l2;
    SortModel exact(exact_cfg);
    SortModel::Config capped_cfg;
    capped_cfg.sampleCap = 1 << 20;
    capped_cfg.l2 = small_l2;
    SortModel capped(capped_cfg);
    for (const auto algo : {Algorithm::Mergesort,
                            Algorithm::Radixsort}) {
        const auto full = exact.profile(algo, 1 << 21, 1);
        const auto scaled = capped.profile(algo, 1 << 21, 1);
        EXPECT_FALSE(full.extrapolated);
        EXPECT_TRUE(scaled.extrapolated);
        const double f = full.memReads + full.memWrites;
        const double s = scaled.memReads + scaled.memWrites;
        EXPECT_GT(s, f * 0.4) << algorithmName(algo);
        EXPECT_LT(s, f * 2.5) << algorithmName(algo);
    }
}

TEST(SortModel, WorkloadProfileFields)
{
    SortModel::Config cfg;
    cfg.sampleCap = 1 << 14;
    SortModel model(cfg);
    const auto w = model.workloadProfile(Algorithm::Radixsort,
                                         1 << 20, 4);
    EXPECT_GT(w.instructions, 0.0);
    EXPECT_GT(w.memReads, 0.0);
    EXPECT_EQ(w.name, std::string("R/S"));
}
