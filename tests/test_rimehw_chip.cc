/**
 * @file
 * The executable-specification tests of the bit-level RIME chip:
 *
 *  - repeated min extraction equals a stable ascending sort of the
 *    decoded values (ties by lowest address), in all three data-type
 *    modes;
 *  - the chip agrees with the direct Algorithm-1 transcription
 *    (rimehw/reference.hh), including step counts;
 *  - multi-unit (multi-mat) exclusion never loses a value;
 *  - exclusion latches persist across scans and reset on initRange.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/rng.hh"
#include "rimehw/chip.hh"
#include "rimehw/reference.hh"

using namespace rime;
using namespace rime::rimehw;

namespace
{

/** Small geometry so tests cross unit/mat boundaries quickly. */
RimeGeometry
tinyGeometry()
{
    RimeGeometry g;
    g.chipsPerChannel = 1;
    g.banksPerChip = 2;
    g.subbanksPerBank = 4;
    g.arraysPerMat = 2;
    g.arrayRows = 8;
    g.arrayCols = 64;
    return g;
}

std::vector<std::uint64_t>
randomRaws(std::size_t n, unsigned k, std::uint64_t seed)
{
    Rng rng(seed);
    const std::uint64_t mask = k >= 64 ? ~0ULL : (1ULL << k) - 1;
    std::vector<std::uint64_t> raws(n);
    for (auto &r : raws)
        r = rng() & mask;
    return raws;
}

/** Expected extraction order: stable sort by encoded key. */
std::vector<std::size_t>
expectedOrder(const std::vector<std::uint64_t> &raws, unsigned k,
              KeyMode mode, bool find_max)
{
    std::vector<std::size_t> idx(raws.size());
    std::iota(idx.begin(), idx.end(), 0);
    std::stable_sort(idx.begin(), idx.end(),
        [&](std::size_t a, std::size_t b) {
            const auto ea = encodeKey(raws[a], k, mode);
            const auto eb = encodeKey(raws[b], k, mode);
            if (ea != eb)
                return find_max ? ea > eb : ea < eb;
            return a < b; // priority to smaller indices
        });
    return idx;
}

struct ModeCase
{
    KeyMode mode;
    unsigned k;
};

class ChipSortTest : public ::testing::TestWithParam<ModeCase>
{};

} // namespace

TEST_P(ChipSortTest, RepeatedMinIsStableSort)
{
    const auto [mode, k] = GetParam();
    RimeChip chip(tinyGeometry());
    chip.configure(k, mode);

    const std::size_t n = std::min<std::size_t>(
        100, chip.valueCapacity()); // spans several units
    auto raws = randomRaws(n, k, 1000 + k);
    for (std::size_t i = 0; i < n; ++i)
        chip.writeValue(i, raws[i]);
    chip.initRange(0, n);

    const auto expect = expectedOrder(raws, k, mode, false);
    for (std::size_t i = 0; i < n; ++i) {
        const auto r = chip.extract(0, n, false);
        ASSERT_TRUE(r.found) << "extraction " << i;
        EXPECT_EQ(r.index, expect[i]) << "extraction " << i;
        EXPECT_EQ(r.raw, raws[expect[i]]);
    }
    EXPECT_FALSE(chip.extract(0, n, false).found);
}

TEST_P(ChipSortTest, RepeatedMaxIsStableDescendingSort)
{
    const auto [mode, k] = GetParam();
    RimeChip chip(tinyGeometry());
    chip.configure(k, mode);

    const std::size_t n = std::min<std::size_t>(
        60, chip.valueCapacity());
    auto raws = randomRaws(n, k, 2000 + k);
    for (std::size_t i = 0; i < n; ++i)
        chip.writeValue(i, raws[i]);
    chip.initRange(0, n);

    const auto expect = expectedOrder(raws, k, mode, true);
    for (std::size_t i = 0; i < n; ++i) {
        const auto r = chip.extract(0, n, true);
        ASSERT_TRUE(r.found);
        EXPECT_EQ(r.index, expect[i]) << "extraction " << i;
    }
}

TEST_P(ChipSortTest, AgreesWithReferenceAlgorithm)
{
    const auto [mode, k] = GetParam();
    RimeChip chip(tinyGeometry());
    chip.configure(k, mode);

    const std::size_t n = 40;
    auto raws = randomRaws(n, k, 3000 + k);
    // Insert duplicates to exercise the tie path.
    raws[7] = raws[3];
    raws[21] = raws[3];
    for (std::size_t i = 0; i < n; ++i)
        chip.writeValue(i, raws[i]);
    chip.initRange(0, n);

    std::vector<bool> alive(n, true);
    for (std::size_t i = 0; i < n; ++i) {
        const auto expect = referenceMinMax(raws, alive, k, mode,
                                            false);
        const auto got = chip.extract(0, n, false);
        ASSERT_TRUE(got.found);
        ASSERT_TRUE(expect.found);
        EXPECT_EQ(got.index, expect.index);
        EXPECT_EQ(got.raw, expect.raw);
        alive[expect.index] = false;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ChipSortTest,
    ::testing::Values(ModeCase{KeyMode::UnsignedFixed, 8},
                      ModeCase{KeyMode::UnsignedFixed, 16},
                      ModeCase{KeyMode::UnsignedFixed, 32},
                      ModeCase{KeyMode::UnsignedFixed, 64},
                      ModeCase{KeyMode::SignedFixed, 8},
                      ModeCase{KeyMode::SignedFixed, 16},
                      ModeCase{KeyMode::SignedFixed, 32},
                      ModeCase{KeyMode::Float, 32},
                      ModeCase{KeyMode::Float, 64}),
    [](const auto &info) {
        return std::string(keyModeName(info.param.mode) ==
                           std::string("unsigned-fixed") ? "U"
                           : keyModeName(info.param.mode) ==
                             std::string("signed-fixed") ? "S" : "F") +
            std::to_string(info.param.k);
    });

TEST(ChipFloat, NegativeFloatsFollowFigure5)
{
    // The worked example of Figure 5: an 8-bit float-like format with
    // 3 exponent and 4 mantissa bits; min of {18.0, -1.625, -0.75}
    // must be -1.625 (largest magnitude among the negatives).
    RimeChip chip(tinyGeometry());
    chip.configure(8, KeyMode::Float);
    // Patterns from the paper's figure.
    const std::uint64_t v18 = 0b01110001;   // 18.0
    const std::uint64_t vm1625 = 0b10111010; // -1.625
    const std::uint64_t vm075 = 0b10101000;  // -0.75
    chip.writeValue(0, v18);
    chip.writeValue(1, vm1625);
    chip.writeValue(2, vm075);
    chip.initRange(0, 3);

    auto r = chip.extract(0, 3, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.raw, vm1625);
    r = chip.extract(0, 3, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.raw, vm075);
    r = chip.extract(0, 3, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.raw, v18);
}

TEST(ChipFixed, Figure4Example)
{
    // Figure 4: unsigned fixed point alpha=3, beta=2; the minimum of
    // {4.00, 1.75, 1.25, 1.00, 6.50} is 1.00 (pattern 00100).
    RimeChip chip(tinyGeometry());
    chip.configure(8, KeyMode::UnsignedFixed); // pad 5-bit to 8
    const std::uint64_t raws[] = {0b10000, 0b00111, 0b00101, 0b00100,
                                  0b11010};
    for (std::size_t i = 0; i < 5; ++i)
        chip.writeValue(i, raws[i]);
    chip.initRange(0, 5);
    const auto r = chip.extract(0, 5, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.raw, 0b00100u);
    EXPECT_EQ(r.index, 3u);
}

TEST(ChipRange, SubRangeAndReInit)
{
    RimeChip chip(tinyGeometry());
    chip.configure(16, KeyMode::UnsignedFixed);
    const std::size_t n = 32;
    auto raws = randomRaws(n, 16, 99);
    for (std::size_t i = 0; i < n; ++i)
        chip.writeValue(i, raws[i]);

    // Min over [8, 24) only.
    chip.initRange(8, 24);
    const auto r = chip.extract(8, 24, false);
    ASSERT_TRUE(r.found);
    const auto begin = raws.begin() + 8;
    const auto end = raws.begin() + 24;
    EXPECT_EQ(r.raw, *std::min_element(begin, end));
    EXPECT_GE(r.index, 8u);
    EXPECT_LT(r.index, 24u);

    // Exclusions persist until re-init.
    EXPECT_EQ(chip.remainingInRange(8, 24), 15u);
    chip.initRange(8, 24);
    EXPECT_EQ(chip.remainingInRange(8, 24), 16u);
    const auto r2 = chip.extract(8, 24, false);
    ASSERT_TRUE(r2.found);
    EXPECT_EQ(r2.raw, r.raw);
    EXPECT_EQ(r2.index, r.index);
}

TEST(ChipRange, ConcurrentDisjointRanges)
{
    RimeChip chip(tinyGeometry());
    chip.configure(16, KeyMode::UnsignedFixed);
    auto raws = randomRaws(64, 16, 123);
    for (std::size_t i = 0; i < raws.size(); ++i)
        chip.writeValue(i, raws[i]);
    chip.initRange(0, 24);
    chip.initRange(24, 64);

    // Alternate extractions from the two ranges; each must see its
    // own ordered stream.
    auto exp_a = expectedOrder({raws.begin(), raws.begin() + 24}, 16,
                               KeyMode::UnsignedFixed, false);
    std::vector<std::uint64_t> b_raws(raws.begin() + 24, raws.end());
    auto exp_b = expectedOrder(b_raws, 16, KeyMode::UnsignedFixed,
                               false);
    for (std::size_t i = 0; i < 24; ++i) {
        const auto ra = chip.extract(0, 24, false);
        ASSERT_TRUE(ra.found);
        EXPECT_EQ(ra.index, exp_a[i]);
        const auto rb = chip.extract(24, 64, false);
        ASSERT_TRUE(rb.found);
        EXPECT_EQ(rb.index, exp_b[i] + 24);
    }
}

TEST(ChipScan, ScanIsPureUntilExcluded)
{
    RimeChip chip(tinyGeometry());
    chip.configure(16, KeyMode::UnsignedFixed);
    auto raws = randomRaws(10, 16, 5);
    for (std::size_t i = 0; i < raws.size(); ++i)
        chip.writeValue(i, raws[i]);
    chip.initRange(0, 10);

    const auto s1 = chip.scan(0, 10, false);
    const auto s2 = chip.scan(0, 10, false);
    ASSERT_TRUE(s1.found);
    EXPECT_EQ(s1.index, s2.index);
    EXPECT_EQ(s1.raw, s2.raw);
    chip.exclude(0, 10, s1.index);
    const auto s3 = chip.scan(0, 10, false);
    ASSERT_TRUE(s3.found);
    EXPECT_NE(s3.index, s1.index);
}

TEST(ChipWear, SortPerformsNoCellWrites)
{
    // Section VII-C: RIME sorting does not swap data, so the only
    // cell writes are the initial loads.
    RimeChip chip(tinyGeometry());
    chip.configure(16, KeyMode::UnsignedFixed);
    auto raws = randomRaws(50, 16, 6);
    for (std::size_t i = 0; i < raws.size(); ++i)
        chip.writeValue(i, raws[i]);
    const auto writes_after_load = chip.endurance().totalWrites();
    chip.initRange(0, 50);
    for (int i = 0; i < 50; ++i)
        ASSERT_TRUE(chip.extract(0, 50, false).found);
    EXPECT_EQ(chip.endurance().totalWrites(), writes_after_load);
}

TEST(ChipTiming, StepsAndTimeAccounting)
{
    RimeChip chip(tinyGeometry());
    chip.configure(32, KeyMode::UnsignedFixed);
    chip.writeValue(0, 5);
    chip.writeValue(1, 5);
    chip.initRange(0, 2);
    // Two equal values: the scan cannot disambiguate and runs all 32
    // steps; priority encoding returns index 0.
    auto r = chip.extract(0, 2, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.index, 0u);
    EXPECT_EQ(r.steps, 32u);
    // One survivor left: zero scan steps.
    r = chip.extract(0, 2, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.index, 1u);
    EXPECT_EQ(r.steps, 0u);
    EXPECT_EQ(r.time, chip.timing().tRead);
}
