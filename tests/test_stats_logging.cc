/** @file Unit tests for the stats registry, logging, and RNG. */

#include <gtest/gtest.h>

#include <sstream>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"

using namespace rime;

TEST(Stats, IncSetGet)
{
    StatGroup g("grp");
    EXPECT_EQ(g.get("x"), 0.0);
    g.inc("x");
    g.inc("x", 2.5);
    EXPECT_DOUBLE_EQ(g.get("x"), 3.5);
    g.set("x", 1.0);
    EXPECT_DOUBLE_EQ(g.get("x"), 1.0);
    EXPECT_TRUE(g.has("x"));
    EXPECT_FALSE(g.has("y"));
}

TEST(Stats, MergeAndReset)
{
    StatGroup a("a");
    StatGroup b("b");
    a.inc("hits", 2);
    b.inc("hits", 3);
    b.inc("misses", 1);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get("hits"), 5.0);
    EXPECT_DOUBLE_EQ(a.get("misses"), 1.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.get("hits"), 0.0);
}

TEST(Stats, Dump)
{
    StatGroup g("grp");
    g.set("value", 4);
    std::ostringstream os;
    g.dump(os);
    EXPECT_EQ(os.str(), "grp.value 4\n");
}

TEST(Stats, DumpPreservesStreamState)
{
    // dump() raises the stream precision internally; it must not leak
    // that (or any flag changes) into the caller's stream.
    StatGroup g("grp");
    g.set("ratio", 1.0 / 3.0);
    g.hist("lat").record(2.0);
    std::ostringstream os;
    const std::ios_base::fmtflags flags_before = os.flags();
    const std::streamsize precision_before = os.precision();
    g.dump(os);
    EXPECT_EQ(os.flags(), flags_before);
    EXPECT_EQ(os.precision(), precision_before);
    const std::size_t mark = os.str().size();
    os << 0.123456789;
    EXPECT_EQ(os.str().substr(mark), "0.123457");
}

TEST(Stats, DumpIncludesHistograms)
{
    StatGroup g("grp");
    g.hist("lat").record(3.0);
    g.hist("lat").record(3.0);
    g.hist("empty");
    std::ostringstream os;
    g.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("grp.lat.count 2"), std::string::npos);
    EXPECT_NE(text.find("grp.lat.mean 3"), std::string::npos);
    EXPECT_NE(text.find("grp.lat.bucket[2,4) 2"), std::string::npos);
    // An empty histogram dumps only its count line.
    EXPECT_NE(text.find("grp.empty.count 0"), std::string::npos);
    EXPECT_EQ(text.find("grp.empty.mean"), std::string::npos);
}

TEST(Logging, FatalThrows)
{
    EXPECT_THROW(fatal("bad thing %d", 42), FatalError);
    try {
        fatal("bad thing %d", 42);
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "bad thing 42");
    }
}

TEST(Rng, DeterministicAndSeedSensitive)
{
    Rng a(1);
    Rng b(1);
    Rng c(2);
    bool differs = false;
    for (int i = 0; i < 100; ++i) {
        const auto va = a();
        EXPECT_EQ(va, b());
        if (va != c())
            differs = true;
    }
    EXPECT_TRUE(differs);
}

TEST(Rng, UniformRanges)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        const auto v = rng.range(5, 10);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 10u);
    }
}

TEST(Rng, RoughUniformity)
{
    Rng rng(4);
    int buckets[10] = {};
    const int samples = 100000;
    for (int i = 0; i < samples; ++i)
        ++buckets[rng.below(10)];
    for (int b = 0; b < 10; ++b) {
        EXPECT_NEAR(buckets[b], samples / 10, samples / 100)
            << "bucket " << b;
    }
}
