/**
 * @file
 * Fault-injection and self-healing tests: stuck-at, wear-out, and
 * read-disturb chips must either produce exactly correct results
 * (verified writes, verified + confirmed scans, spare-row remaps,
 * spare-unit migration) or explicit errors -- never a silently wrong
 * item.  All of it must stay bit-identical between hostThreads=1 and
 * hostThreads=N, and the API layer must surface health, retire dead
 * extents from the allocator, and fail loudly on the legacy
 * interface.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "rime/api.hh"
#include "rime/ops.hh"
#include "rimehw/chip.hh"
#include "rimehw/faults.hh"

using namespace rime;
using namespace rime::rimehw;

namespace
{

/** Small geometry (64x64 arrays) so faulty drains stay fast. */
RimeGeometry
smallGeometry()
{
    RimeGeometry g;
    g.chipsPerChannel = 1;
    g.banksPerChip = 4;
    g.subbanksPerBank = 8;
    g.arraysPerMat = 2;
    g.arrayRows = 64;
    g.arrayCols = 64;
    return g;
}

/** Drain [0, n) via extract(min); every item must verify as Ok. */
std::vector<std::uint64_t>
drainChip(RimeChip &chip, std::size_t n)
{
    std::vector<std::uint64_t> out;
    for (std::size_t i = 0; i < n; ++i) {
        ExtractResult r;
        // A transient-disturb chip may exhaust one scan's retry
        // budget; the explicit VerifyFailed invites the caller to try
        // again in a later epoch.  Bounded so a real failure fails.
        for (int tries = 0; tries < 32; ++tries) {
            r = chip.extract(0, n, false);
            if (r.status != ScanStatus::VerifyFailed)
                break;
        }
        EXPECT_EQ(r.status, ScanStatus::Ok) << "item " << i;
        if (!r.found)
            break;
        out.push_back(r.raw);
    }
    return out;
}

void
expectSameStats(const RimeChip &a, const RimeChip &b)
{
    // Host wall-clock stats ("*WallNs") are outside the determinism
    // contract; everything else must agree exactly.
    EXPECT_EQ(a.stats().values().size(), b.stats().values().size());
    for (const auto &kv : a.stats().values()) {
        if (isWallClockStat(kv.first))
            continue;
        EXPECT_DOUBLE_EQ(kv.second, b.stats().get(kv.first))
            << kv.first;
    }
    EXPECT_DOUBLE_EQ(a.energyPJ(), b.energyPJ());
}

} // namespace

// ---------------------------------------------------------------------
// Fault model: pure, seeded, reproducible.
// ---------------------------------------------------------------------

TEST(FaultModel, DecisionsArePureFunctionsOfSeedAndCoordinates)
{
    FaultParams p;
    p.seed = 42;
    p.stuckAt0Rate = 1e-3;
    p.stuckAt1Rate = 1e-3;
    p.readDisturbRate = 1e-4;
    p.wearOutBlockWrites = 100;
    const FaultModel a(p), b(p);
    FaultParams q = p;
    q.seed = 43;
    const FaultModel c(q);

    int diff = 0;
    for (std::uint64_t array = 0; array < 4; ++array) {
        for (unsigned row = 0; row < 64; ++row) {
            for (unsigned col = 0; col < 32; ++col) {
                EXPECT_EQ(a.stuckState(array, row, col),
                          b.stuckState(array, row, col));
                EXPECT_EQ(a.wornOut(array, row, col, 200),
                          b.wornOut(array, row, col, 200));
                diff += a.stuckState(array, row, col) !=
                    c.stuckState(array, row, col);
            }
        }
    }
    EXPECT_GT(diff, 0) << "different seeds, identical fault maps";

    // Disturb masks repeat within an epoch and vary across epochs.
    EXPECT_EQ(a.disturbWord(1, 3, 0, 7), b.disturbWord(1, 3, 0, 7));
    int epoch_diff = 0;
    for (std::uint64_t e = 0; e < 4096; ++e)
        epoch_diff += a.disturbWord(1, 3, 0, e) !=
            a.disturbWord(1, 3, 0, e + 1);
    EXPECT_GT(epoch_diff, 0);
}

TEST(FaultModel, NoFaultsWhenRatesAreZero)
{
    FaultParams p;
    p.readDisturbRate = 0.0;
    const FaultModel m(p);
    for (unsigned row = 0; row < 64; ++row) {
        for (unsigned col = 0; col < 16; ++col) {
            EXPECT_EQ(m.stuckState(0, row, col), -1);
            EXPECT_FALSE(m.wornOut(0, row, col, 1'000'000));
        }
    }
    EXPECT_EQ(m.disturbWord(0, 0, 0, 123), 0u);
}

// ---------------------------------------------------------------------
// Stuck-at cells: write-verify + spare-row remap keep sorts exact.
// ---------------------------------------------------------------------

TEST(FaultyChip, StuckAtSortExactWithRemaps)
{
    for (const std::uint64_t seed : {1ULL, 7ULL}) {
        FaultParams f;
        f.seed = seed;
        f.stuckAt0Rate = 1e-3;
        f.stuckAt1Rate = 1e-3;
        RimeChip chip(smallGeometry(), RimeTimingParams{}, 1, f);
        chip.configure(16, KeyMode::UnsignedFixed);

        const std::size_t n = std::min<std::size_t>(
            500, chip.valueCapacity());
        Rng rng(900 + seed);
        std::vector<std::uint64_t> vals(n);
        for (std::size_t i = 0; i < n; ++i) {
            vals[i] = rng() & 0xFFFF;
            chip.writeValue(i, vals[i]);
        }
        chip.initRange(0, n);

        const auto got = drainChip(chip, n);
        std::sort(vals.begin(), vals.end());
        EXPECT_EQ(got, vals) << "seed " << seed;

        // At these rates the seeds above are chosen to actually
        // exercise the repair path, not just its absence.
        const HealthCounts hc = chip.healthCounts();
        EXPECT_GT(hc.remappedRows, 0u) << "seed " << seed;
        EXPECT_EQ(hc.lostValues, 0u);
        EXPECT_EQ(hc.deadUnits, 0u);
    }
}

TEST(FaultyChip, SpareRowsShrinkCapacity)
{
    FaultParams f;
    f.stuckAt0Rate = 1e-4;
    f.spareRowsPerUnit = 8;
    RimeChip faulty(smallGeometry(), RimeTimingParams{}, 1, f);
    RimeChip clean(smallGeometry(), RimeTimingParams{}, 1);
    faulty.configure(16, KeyMode::UnsignedFixed);
    clean.configure(16, KeyMode::UnsignedFixed);
    // 8 of 64 rows per unit are spares and 2 units per chip are spare
    // units, so the visible capacity must shrink accordingly.
    EXPECT_LT(faulty.valueCapacity(), clean.valueCapacity());
}

// ---------------------------------------------------------------------
// Wear-out: failed writes are caught and remapped while spares last.
// ---------------------------------------------------------------------

TEST(FaultyChip, WearOutRemapsThenSortStaysExact)
{
    FaultParams f;
    f.seed = 5;
    f.wearOutBlockWrites = 3000;
    f.wearOutSpread = 0.25;
    RimeChip chip(smallGeometry(), RimeTimingParams{}, 1, f);
    chip.configure(16, KeyMode::UnsignedFixed);

    const std::size_t n = 128;
    Rng rng(31);
    std::vector<std::uint64_t> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
        vals[i] = rng() & 0xFFFF;
        chip.writeValue(i, vals[i]);
    }
    // Hammer a subset until the block write count crosses the weakest
    // cell's individual wear budget and the first rewrite fails
    // verify; stopping right there keeps the wear marginal, so the
    // spare rows absorb it with room to spare.
    for (int round = 0; round < 250; ++round) {
        if (chip.stats().get("faultRowRemaps") > 0.0)
            break;
        for (std::size_t i = 0; i < 32; ++i) {
            vals[i] = rng() & 0xFFFF;
            chip.writeValue(i, vals[i]);
        }
    }
    EXPECT_GT(chip.stats().get("faultRowRemaps"), 0.0);
    EXPECT_GT(chip.healthCounts().degradedUnits, 0u);

    chip.initRange(0, n);
    const auto got = drainChip(chip, n);
    std::sort(vals.begin(), vals.end());
    EXPECT_EQ(got, vals);
    EXPECT_EQ(chip.healthCounts().lostValues, 0u);
}

// ---------------------------------------------------------------------
// Read disturb: trajectory verify + epoch confirmation; exact drains.
// ---------------------------------------------------------------------

TEST(FaultyChip, ReadDisturbConfirmedSortExact)
{
    FaultParams f;
    f.seed = 9;
    f.readDisturbRate = 5e-5;
    RimeChip chip(smallGeometry(), RimeTimingParams{}, 1, f);
    chip.configure(16, KeyMode::UnsignedFixed);

    const std::size_t n = 400;
    Rng rng(1234);
    std::vector<std::uint64_t> vals(n);
    for (std::size_t i = 0; i < n; ++i) {
        vals[i] = rng() & 0xFFFF;
        chip.writeValue(i, vals[i]);
    }
    chip.initRange(0, n);
    const auto got = drainChip(chip, n);
    std::sort(vals.begin(), vals.end());
    EXPECT_EQ(got, vals);
    // Every emission needed at least one confirming rescan.
    EXPECT_GE(chip.stats().get("faultRescans"), double(n));
}

// ---------------------------------------------------------------------
// Determinism: all fault mechanisms, threads=1 vs threads=N.
// ---------------------------------------------------------------------

TEST(FaultyChip, AllMechanismsBitIdenticalAcrossThreads)
{
    FaultParams f;
    f.seed = 77;
    f.stuckAt0Rate = 5e-4;
    f.stuckAt1Rate = 5e-4;
    f.readDisturbRate = 5e-5;
    f.wearOutBlockWrites = 3000;
    RimeChip serial(smallGeometry(), RimeTimingParams{}, 1, f);
    RimeChip parallel(smallGeometry(), RimeTimingParams{}, 4, f);
    ASSERT_EQ(serial.hostThreads(), 1u);
    ASSERT_EQ(parallel.hostThreads(), 4u);
    serial.configure(16, KeyMode::UnsignedFixed);
    parallel.configure(16, KeyMode::UnsignedFixed);

    const std::size_t n = 300;
    Rng rng(555);
    auto put = [&](std::uint64_t idx, std::uint64_t raw) {
        serial.writeValue(idx, raw);
        parallel.writeValue(idx, raw);
    };
    for (std::size_t i = 0; i < n; ++i)
        put(i, rng() & 0xFFFF);
    serial.initRange(0, n);
    parallel.initRange(0, n);

    for (int step = 0; step < 400; ++step) {
        if (rng.below(5) == 0) {
            put(rng.below(n), rng() & 0xFFFF);
            continue;
        }
        const bool find_max = rng.below(4) == 0;
        const ExtractResult a = serial.extract(0, n, find_max);
        const ExtractResult b = parallel.extract(0, n, find_max);
        ASSERT_EQ(a.status, b.status) << "step " << step;
        ASSERT_EQ(a.found, b.found) << "step " << step;
        if (a.found) {
            EXPECT_EQ(a.raw, b.raw) << "step " << step;
            EXPECT_EQ(a.index, b.index) << "step " << step;
            EXPECT_EQ(a.steps, b.steps) << "step " << step;
            EXPECT_EQ(a.time, b.time) << "step " << step;
        }
    }
    expectSameStats(serial, parallel);
    const HealthCounts ha = serial.healthCounts();
    const HealthCounts hb = parallel.healthCounts();
    EXPECT_EQ(ha.remappedRows, hb.remappedRows);
    EXPECT_EQ(ha.degradedUnits, hb.degradedUnits);
    EXPECT_EQ(ha.retiredUnits, hb.retiredUnits);
    EXPECT_EQ(ha.deadUnits, hb.deadUnits);
    EXPECT_EQ(ha.lostValues, hb.lostValues);
}

// ---------------------------------------------------------------------
// Beyond repair capacity: explicit errors, never silent corruption.
// ---------------------------------------------------------------------

TEST(FaultyChip, BeyondRepairCapacityReportsDataLoss)
{
    FaultParams f;
    f.seed = 2;
    f.stuckAt1Rate = 0.2; // far beyond any provisioned spare capacity
    f.spareRowsPerUnit = 2;
    f.spareUnitsPerChip = 1;
    RimeChip chip(smallGeometry(), RimeTimingParams{}, 1, f);
    chip.configure(16, KeyMode::UnsignedFixed);

    const std::size_t n = 200;
    Rng rng(8);
    for (std::size_t i = 0; i < n; ++i)
        chip.writeValue(i, rng() & 0xFFFF);
    const HealthCounts hc = chip.healthCounts();
    EXPECT_GT(hc.lostValues, 0u);
    EXPECT_GT(hc.deadUnits, 0u);
    EXPECT_FALSE(chip.drainDeadExtents().empty());

    chip.initRange(0, n);
    const ExtractResult r = chip.extract(0, n, false);
    EXPECT_FALSE(r.found);
    EXPECT_EQ(r.status, ScanStatus::DataLoss);
}

// ---------------------------------------------------------------------
// API level: 64k-key sort, health, retired extents, legacy fatal.
// ---------------------------------------------------------------------

namespace
{

LibraryConfig
faultyLibraryConfig(unsigned host_threads, std::uint64_t seed,
                    double stuck_rate)
{
    LibraryConfig cfg;
    cfg.device.bitLevel = true;
    cfg.device.hostThreads = host_threads;
    cfg.device.faults.seed = seed;
    cfg.device.faults.stuckAt0Rate = stuck_rate;
    cfg.device.faults.stuckAt1Rate = stuck_rate;
    return cfg;
}

/** Full 64k-key sort through rimeMin; returns (raw, address) pairs. */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
apiSort(const LibraryConfig &cfg,
        const std::vector<std::uint64_t> &keys)
{
    RimeLibrary lib(cfg);
    const std::uint64_t bytes = keys.size() * sizeof(std::uint32_t);
    const auto addr = lib.rimeMalloc(bytes);
    EXPECT_TRUE(addr.has_value());
    lib.storeArray(*addr, keys);
    lib.rimeInit(*addr, *addr + bytes, KeyMode::UnsignedFixed, 32);

    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    out.reserve(keys.size());
    while (auto item = lib.rimeMin(*addr, *addr + bytes))
        out.emplace_back(item->raw, item->index);
    EXPECT_TRUE(lib.rimeHealth().counts.lostValues == 0);
    return out;
}

} // namespace

TEST(FaultyApi, StuckAt1e4SortOf64kKeysMatchesStdSortExactly)
{
    // The acceptance bar: at stuck-at rates up to 1e-4 a full sort of
    // 64k keys through rimeMin matches std::sort exactly -- zero
    // silent corruption -- and is bit-identical for hostThreads 1 / 4.
    const std::size_t n = 65536;
    for (const std::uint64_t seed : {3ULL, 11ULL}) {
        Rng rng(24000 + seed);
        std::vector<std::uint64_t> keys(n);
        for (auto &k : keys)
            k = rng() & 0xFFFFFFFFULL;

        const auto parallel =
            apiSort(faultyLibraryConfig(4, seed, 1e-4), keys);
        ASSERT_EQ(parallel.size(), n) << "seed " << seed;

        std::vector<std::uint64_t> expect = keys;
        std::sort(expect.begin(), expect.end());
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(parallel[i].first, expect[i])
                << "seed " << seed << " rank " << i;

        if (seed == 3) {
            const auto serial =
                apiSort(faultyLibraryConfig(1, seed, 1e-4), keys);
            ASSERT_EQ(serial, parallel);
        }
    }
}

TEST(FaultyApi, BeyondCapacityChecksAndLegacyFatal)
{
    LibraryConfig cfg = faultyLibraryConfig(2, 4, 0.0);
    cfg.device.faults.stuckAt1Rate = 0.2;
    cfg.device.faults.spareRowsPerUnit = 2;
    cfg.device.faults.spareUnitsPerChip = 1;
    RimeLibrary lib(cfg);

    const std::size_t n = 4096;
    const std::uint64_t bytes = n * sizeof(std::uint32_t);
    const auto addr = lib.rimeMalloc(bytes);
    ASSERT_TRUE(addr.has_value());
    Rng rng(99);
    std::vector<std::uint64_t> keys(n);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;
    lib.storeArray(*addr, keys);
    lib.rimeInit(*addr, *addr + bytes, KeyMode::UnsignedFixed, 32);

    // The checked API names the failure; the legacy API refuses to
    // return a possibly-wrong item.
    const RimeExtract r = lib.rimeMinChecked(*addr, *addr + bytes);
    EXPECT_EQ(r.status, RimeStatus::DataLoss);
    EXPECT_FALSE(r.ok());
    EXPECT_THROW(lib.rimeMin(*addr, *addr + bytes), FatalError);

    // Health reporting: units died, values were lost, and the driver
    // learned the dead extents so future allocations avoid them.
    const RimeHealthReport health = lib.rimeHealth();
    EXPECT_FALSE(health.pristine());
    EXPECT_GT(health.counts.lostValues, 0u);
    EXPECT_GT(health.counts.deadUnits, 0u);
    EXPECT_GT(health.retiredBytes, 0u);
    EXPECT_EQ(health.retiredBytes, lib.driver().retiredBytes());
}

TEST(FaultyApi, HealthyDeviceReportsPristine)
{
    RimeLibrary lib(faultyLibraryConfig(2, 1, 1e-5));
    const auto addr = lib.rimeMalloc(4096);
    ASSERT_TRUE(addr.has_value());
    const RimeHealthReport health = lib.rimeHealth();
    EXPECT_EQ(health.counts.lostValues, 0u);
    EXPECT_EQ(health.counts.deadUnits, 0u);
    EXPECT_EQ(health.retiredBytes, 0u);
}

TEST(FaultyApi, FastModelWithFaultsIsRejected)
{
    LibraryConfig cfg;
    cfg.device.bitLevel = false; // FastRime has no cells to corrupt
    cfg.device.faults.stuckAt0Rate = 1e-4;
    EXPECT_THROW(RimeLibrary{cfg}, FatalError);
}

TEST(FaultyApi, StatusNamesAreStable)
{
    EXPECT_STREQ(rimeStatusName(RimeStatus::Ok), "ok");
    EXPECT_STREQ(rimeStatusName(RimeStatus::Empty), "empty");
    EXPECT_STREQ(rimeStatusName(RimeStatus::VerifyFailed),
                 "verify-failed");
    EXPECT_STREQ(rimeStatusName(RimeStatus::DataLoss), "data-loss");
}

// ---------------------------------------------------------------------
// High-level kernels on faulty devices: exact or loud, never silent.
// ---------------------------------------------------------------------


TEST(FaultyKernels, TopKExactAtStuckAt1e4)
{
    // rimeTopK over a stuck-at device (rate 1e-4) must match the
    // std::sort prefix exactly, in both directions, and be
    // bit-identical between hostThreads 1 and 4.
    const std::size_t n = 16384;
    const std::uint64_t count = 256;
    Rng rng(31000);
    std::vector<std::uint64_t> keys(n);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;
    std::vector<std::uint64_t> expect = keys;
    std::sort(expect.begin(), expect.end());

    for (const bool largest : {false, true}) {
        RimeLibrary lib(faultyLibraryConfig(4, 7, 1e-4));
        const KernelResult r = rimeTopK(lib, keys, count, largest,
                                        KeyMode::UnsignedFixed);
        ASSERT_EQ(r.values.size(), count) << "largest=" << largest;
        for (std::uint64_t i = 0; i < count; ++i) {
            const std::uint64_t want = largest
                ? expect[n - 1 - i] : expect[i];
            ASSERT_EQ(r.values[i], want)
                << "largest=" << largest << " rank " << i;
        }
        EXPECT_EQ(lib.rimeHealth().counts.lostValues, 0u);

        RimeLibrary serial(faultyLibraryConfig(1, 7, 1e-4));
        const KernelResult s = rimeTopK(serial, keys, count, largest,
                                        KeyMode::UnsignedFixed);
        EXPECT_EQ(s.values, r.values);
        EXPECT_DOUBLE_EQ(s.seconds, r.seconds);
        EXPECT_DOUBLE_EQ(s.energyPJ, r.energyPJ);
    }
}

TEST(FaultyKernels, MergeKExactAtStuckAt1e4)
{
    // A 3-way merge on a faulty device equals the sorted concatenation.
    const std::size_t per = 2048;
    Rng rng(32000);
    std::vector<std::vector<std::uint64_t>> sets(3);
    std::vector<std::uint64_t> expect;
    for (auto &set : sets) {
        set.resize(per);
        for (auto &k : set) {
            k = rng() & 0xFFFFFFFFULL;
            expect.push_back(k);
        }
    }
    std::sort(expect.begin(), expect.end());

    RimeLibrary lib(faultyLibraryConfig(4, 13, 1e-4));
    const KernelResult r =
        rimeMergeK(lib, sets, KeyMode::UnsignedFixed);
    ASSERT_EQ(r.values.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        ASSERT_EQ(r.values[i], expect[i]) << "rank " << i;
    EXPECT_EQ(lib.rimeHealth().counts.lostValues, 0u);

    RimeLibrary serial(faultyLibraryConfig(1, 13, 1e-4));
    const KernelResult s =
        rimeMergeK(serial, sets, KeyMode::UnsignedFixed);
    EXPECT_EQ(s.values, r.values);
}

TEST(FaultyKernels, BeyondRepairCapacityFailsLoudly)
{
    // With faults far past the provisioned spares, the kernels must
    // refuse with an explicit data-loss error -- not return a stream
    // with silently wrong or missing values.
    LibraryConfig cfg = faultyLibraryConfig(2, 4, 0.0);
    cfg.device.faults.stuckAt1Rate = 0.2;
    cfg.device.faults.spareRowsPerUnit = 2;
    cfg.device.faults.spareUnitsPerChip = 1;

    Rng rng(33000);
    std::vector<std::uint64_t> keys(4096);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;

    const auto expectDataLossError = [](auto &&run) {
        try {
            run();
            FAIL() << "kernel on a lossy device must throw";
        } catch (const FatalError &err) {
            EXPECT_NE(std::string(err.what()).find("data-loss"),
                      std::string::npos) << err.what();
        }
    };
    expectDataLossError([&] {
        RimeLibrary lib(cfg);
        rimeTopK(lib, keys, 64, false, KeyMode::UnsignedFixed);
    });
    expectDataLossError([&] {
        RimeLibrary lib(cfg);
        const std::vector<std::vector<std::uint64_t>> sets{
            {keys.begin(), keys.begin() + 2048},
            {keys.begin() + 2048, keys.end()},
        };
        rimeMergeK(lib, sets, KeyMode::UnsignedFixed);
    });
}
