/**
 * @file
 * Tests of the DDR4/HBM timing model: address-map bijectivity, bank
 * timing-window invariants, row-buffer outcome classification, and
 * sanity of the measured sustained bandwidths (sequential beats
 * random, HBM beats DDR4, nothing exceeds the pin bandwidth).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"
#include "memsim/bandwidth_probe.hh"
#include "memsim/dram_system.hh"

using namespace rime;
using namespace rime::memsim;

TEST(AddressMap, DecodeIsInjectivePerBlock)
{
    const DramParams p = DramParams::offChipDdr4();
    AddressMap map(p, Interleave::RoRaBaCoCh);
    std::set<std::tuple<unsigned, unsigned, unsigned, std::uint64_t,
                        std::uint64_t>> seen;
    Rng rng(5);
    for (int i = 0; i < 20000; ++i) {
        const Addr addr =
            rng.below(p.capacityBytes / p.burstBytes) * p.burstBytes;
        const DramCoord c = map.decode(addr);
        EXPECT_LT(c.channel, p.channels);
        EXPECT_LT(c.rank, p.ranksPerChannel);
        EXPECT_LT(c.bank, p.banksPerRank);
        EXPECT_LT(c.column, p.columnsPerRow());
        seen.insert({c.channel, c.rank, c.bank, c.row, c.column});
    }
    // Different blocks must map to different coordinates (injective).
    // With random sampling duplicates in `seen` only occur when two
    // distinct addresses collide, so the set tracks distinct inputs.
    // (Exact count depends on RNG collisions of addresses.)
    SUCCEED();
}

TEST(AddressMap, FineInterleaveSpreadsChannels)
{
    const DramParams p = DramParams::offChipDdr4();
    AddressMap map(p, Interleave::RoRaBaCoCh);
    // Consecutive blocks must rotate across channels.
    std::set<unsigned> channels;
    for (unsigned i = 0; i < p.channels; ++i)
        channels.insert(map.decode(i * p.burstBytes).channel);
    EXPECT_EQ(channels.size(), p.channels);
}

TEST(AddressMap, RimeMapKeepsChannelsContiguous)
{
    const DramParams p = DramParams::offChipDdr4();
    AddressMap map(p, Interleave::ChRoRaBaCo);
    const Addr channel_bytes = p.capacityBytes / p.channels;
    for (unsigned ch = 0; ch < p.channels; ++ch) {
        EXPECT_EQ(map.decode(ch * channel_bytes).channel, ch);
        EXPECT_EQ(map.decode((ch + 1) * channel_bytes -
                             p.burstBytes).channel, ch);
    }
}

TEST(Bank, TimingWindows)
{
    const DramParams p = DramParams::offChipDdr4();
    Bank bank;
    EXPECT_EQ(bank.classify(5), RowBufferOutcome::Miss);
    bank.activate(p, 5, 1000);
    EXPECT_EQ(bank.classify(5), RowBufferOutcome::Hit);
    EXPECT_EQ(bank.classify(6), RowBufferOutcome::Conflict);
    // tRCD honoured.
    EXPECT_GE(bank.readReady, 1000 + p.tRCD);
    // tRAS before precharge, tRC before the next activate.
    EXPECT_GE(bank.preReady, 1000 + p.tRAS);
    EXPECT_GE(bank.actReady, 1000 + p.tRC);
    bank.precharge(p, bank.preReady);
    EXPECT_EQ(bank.classify(5), RowBufferOutcome::Miss);
    EXPECT_GE(bank.actReady, bank.preReady + p.tRP);
}

TEST(DramSystem, RowHitsAreFasterThanConflicts)
{
    DramSystem mem(DramParams::offChipDdr4());
    const DramParams p = mem.params();
    const MemRequest req1{0, AccessType::Read, 0};
    const Tick t1 = mem.access(req1, 0);
    // Next block in the same channel (stride = channels x 64B):
    // same open row, a hit with small incremental latency.
    const MemRequest req2{p.channels * 64ULL, AccessType::Read, 0};
    const Tick t2 = mem.access(req2, t1);
    const Tick hit_latency = t2 - t1;

    // A different row in the same bank: conflict.
    const Addr conflict = p.rowBufferBytes * p.channels *
        p.banksPerRank * p.ranksPerChannel;
    const MemRequest req3{conflict, AccessType::Read, 0};
    const Tick t3 = mem.access(req3, t2);
    EXPECT_GT(t3 - t2, hit_latency);
    EXPECT_GE(mem.stats().get("rowHits"), 1.0);
    EXPECT_GE(mem.stats().get("rowConflicts"), 1.0);
}

TEST(DramSystem, WritesAreTracked)
{
    DramSystem mem(DramParams::offChipDdr4());
    mem.access({0, AccessType::Write, 0}, 0);
    EXPECT_EQ(mem.stats().get("writeBursts"), 1.0);
    EXPECT_EQ(mem.stats().get("bytesWritten"), 64.0);
}

TEST(Probe, SequentialBeatsRandomBeatsConflict)
{
    DramSystem mem(DramParams::offChipDdr4());
    const auto seq = probeBandwidth(mem, AccessPattern::Sequential,
                                    50000);
    const auto rnd = probeBandwidth(mem, AccessPattern::Random, 50000);
    const auto bad = probeBandwidth(
        mem, AccessPattern::StridedConflict, 20000);
    EXPECT_GT(seq.sustainedGBps, rnd.sustainedGBps);
    EXPECT_GT(rnd.sustainedGBps, bad.sustainedGBps);
    EXPECT_GT(seq.rowHitRate, 0.9);
    EXPECT_LT(bad.rowHitRate, 0.01);
    // Nothing may exceed the pin bandwidth.
    EXPECT_LE(seq.sustainedGBps, mem.peakBandwidthGBps() * 1.001);
}

TEST(Probe, HbmSustainsMoreThanDdr4)
{
    DramSystem ddr(DramParams::offChipDdr4());
    DramSystem hbm(DramParams::inPackageHbm());
    const auto d = probeBandwidth(ddr, AccessPattern::Sequential,
                                  50000);
    const auto h = probeBandwidth(hbm, AccessPattern::Sequential,
                                  50000);
    EXPECT_GT(h.sustainedGBps, d.sustainedGBps * 1.5);

    const auto dr = probeBandwidth(ddr, AccessPattern::Random, 50000);
    const auto hr = probeBandwidth(hbm, AccessPattern::Random, 50000);
    EXPECT_GT(hr.sustainedGBps, dr.sustainedGBps);
}

TEST(Probe, IdleLatencyIsReasonable)
{
    DramSystem mem(DramParams::offChipDdr4());
    const double lat = probeIdleLatencyNs(mem, 5000);
    // tRCD + tCAS + burst is ~48 ns with Table I's numbers.
    EXPECT_GT(lat, 20.0);
    EXPECT_LT(lat, 200.0);
}

TEST(UnlimitedMemory, FixedLatencyInfiniteBandwidth)
{
    UnlimitedMemory mem(nsToTicks(60));
    const Tick t1 = mem.access({0, AccessType::Read, 0}, 0);
    const Tick t2 = mem.access({64, AccessType::Read, 0}, 0);
    EXPECT_EQ(t1, nsToTicks(60));
    EXPECT_EQ(t2, nsToTicks(60)); // no queueing ever
    EXPECT_TRUE(std::isinf(mem.peakBandwidthGBps()));
}
