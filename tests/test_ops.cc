/**
 * @file
 * Tests of the high-level kernels (sort / top-k / k-th order
 * statistic / merge / merge-join) built on the RIME API.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hh"
#include "rime/ops.hh"

using namespace rime;

namespace
{

LibraryConfig
smallConfig()
{
    LibraryConfig cfg;
    cfg.device.channels = 1;
    cfg.device.geometry.chipsPerChannel = 4;
    cfg.device.geometry.banksPerChip = 2;
    cfg.device.geometry.subbanksPerBank = 4;
    cfg.device.geometry.arrayRows = 64;
    cfg.device.geometry.arrayCols = 64;
    return cfg;
}

std::vector<std::uint64_t>
randomU32(std::size_t n, std::uint64_t seed, std::uint64_t mask =
          0xFFFFFFFFULL)
{
    Rng rng(seed);
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng() & mask;
    return v;
}

} // namespace

TEST(Ops, SortMatchesStdSort)
{
    RimeLibrary lib(smallConfig());
    auto values = randomU32(500, 3);
    const auto result = rimeSort(lib, values, KeyMode::UnsignedFixed);
    auto expect = values;
    std::sort(expect.begin(), expect.end());
    ASSERT_EQ(result.values.size(), expect.size());
    EXPECT_EQ(result.values, expect);
    EXPECT_GT(result.seconds, 0.0);
    EXPECT_GT(result.energyPJ, 0.0);
    EXPECT_GT(result.throughputKeysPerSec(), 0.0);
}

TEST(Ops, SortWithDuplicates)
{
    RimeLibrary lib(smallConfig());
    auto values = randomU32(400, 5, 0xF); // heavy duplication
    const auto result = rimeSort(lib, values, KeyMode::UnsignedFixed);
    auto expect = values;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(result.values, expect);
}

TEST(Ops, EmptyAndSingleton)
{
    RimeLibrary lib(smallConfig());
    const std::vector<std::uint64_t> empty;
    EXPECT_TRUE(rimeSort(lib, empty, KeyMode::UnsignedFixed)
                .values.empty());
    const std::vector<std::uint64_t> one{42};
    const auto r = rimeSort(lib, one, KeyMode::UnsignedFixed);
    ASSERT_EQ(r.values.size(), 1u);
    EXPECT_EQ(r.values[0], 42u);
}

TEST(Ops, TopKSmallestAndLargest)
{
    RimeLibrary lib(smallConfig());
    auto values = randomU32(300, 7);
    auto expect = values;
    std::sort(expect.begin(), expect.end());

    const auto smallest = rimeTopK(lib, values, 10, false,
                                   KeyMode::UnsignedFixed);
    ASSERT_EQ(smallest.values.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(smallest.values[i], expect[i]);

    const auto largest = rimeTopK(lib, values, 10, true,
                                  KeyMode::UnsignedFixed);
    ASSERT_EQ(largest.values.size(), 10u);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(largest.values[i], expect[expect.size() - 1 - i]);
}

TEST(Ops, KthSmallest)
{
    RimeLibrary lib(smallConfig());
    auto values = randomU32(200, 9);
    auto expect = values;
    std::sort(expect.begin(), expect.end());
    const auto kth = rimeKthSmallest(lib, values, 50,
                                     KeyMode::UnsignedFixed);
    ASSERT_TRUE(kth);
    EXPECT_EQ(*kth, expect[49]);
    EXPECT_FALSE(rimeKthSmallest(lib, values, 0,
                                 KeyMode::UnsignedFixed));
    EXPECT_FALSE(rimeKthSmallest(lib, values, 201,
                                 KeyMode::UnsignedFixed));
}

TEST(Ops, MergeProducesOrderedUnion)
{
    RimeLibrary lib(smallConfig());
    auto a = randomU32(150, 11);
    auto b = randomU32(100, 13);
    const auto result = rimeMerge(lib, a, b, KeyMode::UnsignedFixed);
    std::vector<std::uint64_t> expect = a;
    expect.insert(expect.end(), b.begin(), b.end());
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(result.values, expect);
}

TEST(Ops, MergeFigure6Example)
{
    RimeLibrary lib(smallConfig());
    const std::vector<std::uint64_t> a{5, 1, 3, 7, 10};
    const std::vector<std::uint64_t> b{4, 8, 5};
    const auto merged = rimeMerge(lib, a, b, KeyMode::UnsignedFixed);
    EXPECT_EQ(merged.values, (std::vector<std::uint64_t>{
        1, 3, 4, 5, 5, 7, 8, 10}));
    const auto joined = rimeMergeJoin(lib, a, b,
                                      KeyMode::UnsignedFixed);
    EXPECT_EQ(joined.values, (std::vector<std::uint64_t>{5}));
}

TEST(Ops, MergeJoinMatchesSetIntersection)
{
    RimeLibrary lib(smallConfig());
    auto a = randomU32(200, 17, 0xFF);
    auto b = randomU32(200, 19, 0xFF);
    const auto result = rimeMergeJoin(lib, a, b,
                                      KeyMode::UnsignedFixed);
    std::set<std::uint64_t> sa(a.begin(), a.end());
    std::set<std::uint64_t> sb(b.begin(), b.end());
    std::vector<std::uint64_t> expect;
    std::set_intersection(sa.begin(), sa.end(), sb.begin(), sb.end(),
                          std::back_inserter(expect));
    EXPECT_EQ(result.values, expect);
}

TEST(Ops, MergeWithEmptySide)
{
    RimeLibrary lib(smallConfig());
    auto a = randomU32(50, 21);
    const std::vector<std::uint64_t> empty;
    const auto result = rimeMerge(lib, a, empty,
                                  KeyMode::UnsignedFixed);
    auto expect = a;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(result.values, expect);
}

TEST(Ops, FloatSort)
{
    RimeLibrary lib(smallConfig());
    Rng rng(23);
    std::vector<float> floats;
    std::vector<std::uint64_t> raws;
    for (int i = 0; i < 200; ++i) {
        const float f = static_cast<float>(rng.uniform(-100, 100));
        floats.push_back(f);
        raws.push_back(floatToRaw(f));
    }
    const auto result = rimeSort(lib, raws, KeyMode::Float);
    std::sort(floats.begin(), floats.end());
    ASSERT_EQ(result.values.size(), floats.size());
    for (std::size_t i = 0; i < floats.size(); ++i) {
        EXPECT_FLOAT_EQ(rawToFloat(static_cast<std::uint32_t>(
            result.values[i])), floats[i]);
    }
}

TEST(Ops, RepeatedKernelsReuseTheLibrary)
{
    RimeLibrary lib(smallConfig());
    for (int round = 0; round < 5; ++round) {
        auto values = randomU32(100, 100 + round);
        auto expect = values;
        std::sort(expect.begin(), expect.end());
        EXPECT_EQ(rimeSort(lib, values, KeyMode::UnsignedFixed).values,
                  expect);
    }
    // All regions were freed: the full capacity is allocatable again.
    EXPECT_TRUE(lib.rimeMalloc(lib.device().capacityBytes() / 2));
}

TEST(Ops, KWayMergeMatchesSortedConcatenation)
{
    // Five regions need more capacity than the tiny default config.
    LibraryConfig cfg = smallConfig();
    cfg.device.geometry.banksPerChip = 8;
    cfg.device.geometry.arrayRows = 128;
    RimeLibrary lib(cfg);
    std::vector<std::vector<std::uint64_t>> sets;
    std::vector<std::uint64_t> expect;
    for (int s = 0; s < 5; ++s) {
        sets.push_back(randomU32(40 + 17 * s, 300 + s));
        expect.insert(expect.end(), sets.back().begin(),
                      sets.back().end());
    }
    std::sort(expect.begin(), expect.end());
    const auto result = rimeMergeK(lib, sets,
                                   KeyMode::UnsignedFixed);
    EXPECT_EQ(result.values, expect);
}

TEST(Ops, KWayMergeWithEmptySets)
{
    RimeLibrary lib(smallConfig());
    std::vector<std::vector<std::uint64_t>> sets(3);
    sets[1] = randomU32(25, 7);
    auto expect = sets[1];
    std::sort(expect.begin(), expect.end());
    const auto result = rimeMergeK(lib, sets,
                                   KeyMode::UnsignedFixed);
    EXPECT_EQ(result.values, expect);
}
