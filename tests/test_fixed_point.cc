/** @file Unit tests for the fixed-point format helper. */

#include <gtest/gtest.h>

#include "common/fixed_point.hh"

using namespace rime;

TEST(FixedPoint, UnsignedRoundTrip)
{
    FixedPointFormat fmt(3, 2, false); // Figure 4's alpha=3, beta=2
    EXPECT_EQ(fmt.width(), 5u);
    EXPECT_DOUBLE_EQ(fmt.toDouble(fmt.fromDouble(1.25)), 1.25);
    EXPECT_DOUBLE_EQ(fmt.toDouble(fmt.fromDouble(6.5)), 6.5);
    EXPECT_DOUBLE_EQ(fmt.maxValue(), 7.75);
    EXPECT_DOUBLE_EQ(fmt.minValue(), 0.0);
}

TEST(FixedPoint, Figure4Patterns)
{
    FixedPointFormat fmt(3, 2, false);
    EXPECT_EQ(fmt.fromDouble(4.00), 0b10000u);
    EXPECT_EQ(fmt.fromDouble(1.75), 0b00111u);
    EXPECT_EQ(fmt.fromDouble(1.25), 0b00101u);
    EXPECT_EQ(fmt.fromDouble(1.00), 0b00100u);
    EXPECT_EQ(fmt.fromDouble(6.50), 0b11010u);
}

TEST(FixedPoint, SignedRoundTrip)
{
    FixedPointFormat fmt(4, 4, true);
    EXPECT_DOUBLE_EQ(fmt.toDouble(fmt.fromDouble(-3.5)), -3.5);
    EXPECT_DOUBLE_EQ(fmt.toDouble(fmt.fromDouble(3.9375)), 3.9375);
    EXPECT_DOUBLE_EQ(fmt.minValue(), -8.0);
}

TEST(FixedPoint, SaturatesOutOfRange)
{
    FixedPointFormat fmt(3, 2, false);
    EXPECT_DOUBLE_EQ(fmt.toDouble(fmt.fromDouble(100.0)),
                     fmt.maxValue());
    EXPECT_DOUBLE_EQ(fmt.toDouble(fmt.fromDouble(-5.0)), 0.0);
}

TEST(FixedPoint, OrderingMatchesCodec)
{
    FixedPointFormat fmt(8, 8, true);
    const double values[] = {-100.0, -1.5, -0.0625, 0.0, 0.0625,
                             1.5, 100.0};
    for (const double a : values) {
        for (const double b : values) {
            const auto ea = encodeKey(fmt.fromDouble(a), fmt.width(),
                                      fmt.mode());
            const auto eb = encodeKey(fmt.fromDouble(b), fmt.width(),
                                      fmt.mode());
            EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
        }
    }
}

TEST(FixedPoint, RejectsBadFormats)
{
    EXPECT_THROW(FixedPointFormat(0, 0, false), FatalError);
    EXPECT_THROW(FixedPointFormat(60, 10, false), FatalError);
    EXPECT_THROW(FixedPointFormat(0, 8, true), FatalError);
}
