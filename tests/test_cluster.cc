/**
 * @file
 * Cluster-tier tests: placement properties, admission control, and a
 * real two-process-shaped (two in-process server instances) router
 * exercising the full failover machinery.
 *
 * The placement half is property-based: a consistent-hash ring must
 * be deterministic across builds (same membership -> same lookups),
 * must move only ~K/N keys on a join -- every moved key landing on
 * the joining node -- and must leave unmoved keys exactly where they
 * were on a leave.  The router half drives real RimeServer event
 * loops over TCP: rank -> drain -> rank again must continue exactly
 * where extraction stopped (no duplicated, no lost committed
 * values), resume tokens must reattach a dropped connection's
 * session, and tenant quotas must shed over-cap submissions without
 * blocking the rest.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/router.hh"
#include "common/rng.hh"
#include "net/server.hh"
#include "service/placement.hh"
#include "service/service.hh"

using namespace rime;
using namespace rime::cluster;
using namespace rime::service;
using namespace rime::net;

namespace
{

const bool kSingleThreadedPool = [] {
    ::setenv("RIME_THREADS", "1", /*overwrite=*/0);
    return true;
}();

// ----------------------------------------------------------------------
// Consistent-hash placement properties
// ----------------------------------------------------------------------

constexpr std::size_t kKeys = 4096;

std::vector<std::uint64_t>
propertyKeys()
{
    std::vector<std::uint64_t> keys(kKeys);
    Rng rng(1234);
    for (auto &k : keys)
        k = rng();
    return keys;
}

TEST(HashRing, DeterministicAcrossInstances)
{
    HashRing a, b;
    for (unsigned n = 0; n < 5; ++n) {
        a.addNode(n);
        b.addNode(n);
    }
    for (const std::uint64_t key : propertyKeys())
        EXPECT_EQ(a.lookup(key), b.lookup(key));
}

TEST(HashRing, JoinMovesOnlyItsShare)
{
    constexpr unsigned kNodes = 4;
    HashRing before;
    for (unsigned n = 0; n < kNodes; ++n)
        before.addNode(n);
    HashRing after = before;
    after.addNode(kNodes);

    const auto keys = propertyKeys();
    std::size_t moved = 0;
    for (const std::uint64_t key : keys) {
        const unsigned was = before.lookup(key);
        const unsigned now = after.lookup(key);
        if (was != now) {
            ++moved;
            // Every moved key must land on the joining node.
            EXPECT_EQ(now, kNodes);
        }
    }
    // Expected movement is K/(N+1); allow 2x for vnode variance.
    EXPECT_GT(moved, 0u);
    EXPECT_LE(moved, 2 * kKeys / (kNodes + 1));
}

TEST(HashRing, LeaveKeepsUnownedKeysInPlace)
{
    constexpr unsigned kNodes = 5;
    constexpr unsigned kVictim = 2;
    HashRing before;
    for (unsigned n = 0; n < kNodes; ++n)
        before.addNode(n);
    HashRing after = before;
    after.removeNode(kVictim);

    std::size_t moved = 0;
    for (const std::uint64_t key : propertyKeys()) {
        const unsigned was = before.lookup(key);
        const unsigned now = after.lookup(key);
        if (was == kVictim) {
            ++moved;
            EXPECT_NE(now, kVictim);
        } else {
            // Keys the victim never owned must not move at all.
            EXPECT_EQ(now, was);
        }
    }
    EXPECT_GT(moved, 0u);
    EXPECT_LE(moved, 2 * kKeys / kNodes);
}

TEST(HashRing, PreferenceOrderStartsAtOwner)
{
    HashRing ring;
    for (unsigned n = 0; n < 4; ++n)
        ring.addNode(n);
    for (const std::uint64_t key : propertyKeys()) {
        const auto order = ring.preferenceOrder(key);
        ASSERT_EQ(order.size(), 4u);
        EXPECT_EQ(order.front(), ring.lookup(key));
        auto sorted = order;
        std::sort(sorted.begin(), sorted.end());
        EXPECT_EQ(sorted, (std::vector<unsigned>{0, 1, 2, 3}));
    }
}

TEST(ConsistentHashPlacement, KeyedDeterministicAndSkipsDraining)
{
    std::vector<ShardLoad> loads(4);
    for (unsigned i = 0; i < 4; ++i)
        loads[i].shard = i;

    ConsistentHashPlacement a, b;
    for (std::uint64_t key = 0; key < 512; ++key)
        EXPECT_EQ(a.place(loads, key), b.place(loads, key));

    // Drain the owner of some key: the key must fall through to a
    // non-draining shard, deterministically.
    const std::uint64_t key = 77;
    const unsigned owner = a.place(loads, key);
    loads[owner].draining = true;
    const unsigned fallback = a.place(loads, key);
    EXPECT_NE(fallback, owner);
    EXPECT_EQ(fallback, a.place(loads, key));
}

TEST(ConsistentHashPlacement, UnkeyedIsLeastLoadedLowestIndexTie)
{
    std::vector<ShardLoad> loads(3);
    for (unsigned i = 0; i < 3; ++i)
        loads[i].shard = i;
    loads[0].sessions = 2;
    loads[1].sessions = 1;
    loads[2].sessions = 1;
    ConsistentHashPlacement p;
    // 1 and 2 tie on sessions and queueDepth: lowest index wins.
    EXPECT_EQ(p.place(loads), 1u);
    loads[1].queueDepth = 5;
    EXPECT_EQ(p.place(loads), 2u);
}

// ----------------------------------------------------------------------
// Admission control
// ----------------------------------------------------------------------

TEST(TenantAdmission, CapAcquireRelease)
{
    TenantAdmission admission;
    admission.setQuota("hot", TenantQuota{2, 1});
    auto hot = admission.tenant("hot");
    EXPECT_TRUE(hot->tryAcquire());
    EXPECT_TRUE(hot->tryAcquire());
    EXPECT_FALSE(hot->tryAcquire()); // over cap
    EXPECT_EQ(hot->shed.load(), 1u);
    hot->release();
    EXPECT_TRUE(hot->tryAcquire());
    hot->release();
    hot->release();
    EXPECT_EQ(hot->inFlight.load(), 0u);

    // Unquoted tenants are unlimited but still tracked.
    auto cold = admission.tenant("cold");
    for (unsigned i = 0; i < 100; ++i)
        EXPECT_TRUE(cold->tryAcquire());
    EXPECT_EQ(cold->inFlight.load(), 100u);
}

// ----------------------------------------------------------------------
// Router end-to-end over two real server instances
// ----------------------------------------------------------------------

/** One in-process cluster member: service + wire server. */
struct Instance
{
    std::unique_ptr<RimeService> service;
    std::unique_ptr<RimeServer> server;
    std::string endpoint;

    explicit Instance(unsigned resume_grace_ms = 0,
                      bool deterministic = false)
    {
        ServiceConfig cfg;
        cfg.scheduler.deterministic = deterministic;
        service = std::make_unique<RimeService>(std::move(cfg));
        ServerConfig scfg;
        scfg.tcp = "tcp:127.0.0.1:0";
        scfg.resumeGraceMs = resume_grace_ms;
        server = std::make_unique<RimeServer>(*service, scfg);
        EXPECT_TRUE(server->start());
        endpoint =
            "tcp:127.0.0.1:" + std::to_string(server->tcpPort());
    }
};

net::ClientConfig
fastClient()
{
    net::ClientConfig cc;
    cc.connectAttempts = 2;
    cc.backoffBaseMs = 5;
    cc.readTimeoutMs = 10000;
    return cc;
}

RouterConfig
routerOver(const std::vector<Instance *> &instances)
{
    RouterConfig cfg;
    for (const Instance *inst : instances)
        cfg.members.push_back(
            MemberConfig{inst->endpoint, fastClient()});
    return cfg;
}

constexpr unsigned kValues = 32;
constexpr std::uint64_t kRangeBytes = kValues * 4;

std::vector<std::uint64_t>
rankKeys(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys(kValues);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;
    // The exactness checks below want set semantics: dedup.
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    return keys;
}

/** malloc+store+init a shuffled copy of `keys`; returns the base. */
Addr
armSession(ClusterSession &s, std::vector<std::uint64_t> keys)
{
    Rng rng(99);
    for (std::size_t i = keys.size(); i > 1; --i)
        std::swap(keys[i - 1], keys[rng() % i]);
    Request r;
    r.kind = RequestKind::Malloc;
    r.bytes = keys.size() * 4;
    const Response alloc = s.call(std::move(r));
    EXPECT_TRUE(alloc.ok());
    Request store;
    store.kind = RequestKind::StoreArray;
    store.start = alloc.addr;
    store.values = keys;
    EXPECT_TRUE(s.call(std::move(store)).ok());
    Request init;
    init.kind = RequestKind::Init;
    init.start = alloc.addr;
    init.end = alloc.addr + keys.size() * 4;
    EXPECT_TRUE(s.call(std::move(init)).ok());
    return alloc.addr;
}

std::vector<std::uint64_t>
topK(ClusterSession &s, Addr base, std::uint64_t bytes,
     std::uint64_t count)
{
    Request r;
    r.kind = RequestKind::TopK;
    r.start = base;
    r.end = base + bytes;
    r.count = count;
    const Response resp = s.call(std::move(r));
    std::vector<std::uint64_t> out;
    for (const auto &item : resp.items)
        out.push_back(item.raw);
    return out;
}

TEST(ClusterRouter, RanksAcrossInstances)
{
    Instance a, b;
    ClusterRouter router(routerOver({&a, &b}));
    ASSERT_TRUE(router.connect());

    std::vector<std::shared_ptr<ClusterSession>> sessions;
    for (unsigned i = 0; i < 6; ++i) {
        ClusterSessionConfig cfg;
        cfg.tenant = "t" + std::to_string(i % 3);
        auto s = router.openSession(cfg);
        ASSERT_NE(s, nullptr);
        sessions.push_back(std::move(s));
    }
    // Placement spreads over both instances (6 sessions, 2 members,
    // bounded-load cap keeps either side <= fair share * factor).
    std::map<unsigned, unsigned> homes;
    for (const auto &s : sessions)
        ++homes[s->member()];
    EXPECT_EQ(homes.size(), 2u);

    for (unsigned i = 0; i < sessions.size(); ++i) {
        auto keys = rankKeys(100 + i);
        const Addr base = armSession(*sessions[i], keys);
        const std::uint64_t bytes = keys.size() * 4;
        const auto got =
            topK(*sessions[i], base, bytes, keys.size());
        EXPECT_EQ(got, keys); // keys is sorted + deduped
        sessions[i]->close();
    }
}

TEST(ClusterRouter, DrainContinuesExtractionExactly)
{
    Instance a, b;
    ClusterRouter router(routerOver({&a, &b}));
    ASSERT_TRUE(router.connect());

    ClusterSessionConfig cfg;
    cfg.tenant = "drainme";
    auto s = router.openSession(cfg);
    ASSERT_NE(s, nullptr);
    const auto keys = rankKeys(7);
    const Addr base = armSession(*s, keys);
    const std::uint64_t bytes = keys.size() * 4;

    // Extract a prefix, drain the homing instance, extract the rest:
    // the union must be exactly the sorted keys, no value lost or
    // duplicated across the migration.
    const std::uint64_t prefix = keys.size() / 3;
    const auto before = topK(*s, base, bytes, prefix);
    const unsigned old_home = s->member();
    EXPECT_EQ(router.drainInstance(old_home), 1u);
    EXPECT_NE(s->member(), old_home);
    const auto after =
        topK(*s, base, bytes, keys.size() - prefix);

    std::vector<std::uint64_t> all = before;
    all.insert(all.end(), after.begin(), after.end());
    EXPECT_EQ(all, keys);
    EXPECT_EQ(router.stats().migrations, 1u);
    EXPECT_EQ(router.stats().lostSessions, 0u);
    s->close();
}

TEST(ClusterRouter, ShutdownNoticeTriggersEvacuation)
{
    Instance a, b;
    ClusterRouter router(routerOver({&a, &b}));
    ASSERT_TRUE(router.connect());

    ClusterSessionConfig cfg;
    cfg.tenant = "mover";
    std::vector<std::shared_ptr<ClusterSession>> sessions;
    for (unsigned i = 0; i < 4; ++i) {
        auto s = router.openSession(cfg);
        ASSERT_NE(s, nullptr);
        const auto keys = rankKeys(50 + i);
        armSession(*s, keys);
        sessions.push_back(std::move(s));
    }

    // Graceful shutdown of instance a: the wire notice flips the
    // member to Draining and maintain() evacuates it.
    a.server->beginDrain();
    Member &m = router.membership().member(0);
    for (unsigned spin = 0;
         spin < 200 && !m.client->shutdownAdvised(); ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_TRUE(m.client->shutdownAdvised());
    router.maintain();
    EXPECT_EQ(m.healthNow(), MemberHealth::Draining);
    for (const auto &s : sessions)
        EXPECT_EQ(s->member(), 1u);
    // The notice is operational, not a protocol error.
    EXPECT_EQ(m.client->protocolErrors(), 0u);
    for (auto &s : sessions)
        s->close();
}

TEST(ClusterRouter, QuotaShedsWithoutBlocking)
{
    // Deterministic schedulers: nothing completes until start(), so
    // admission slots stay held and the shed decision is exact.
    Instance a(0, /*deterministic=*/true);
    Instance b(0, /*deterministic=*/true);
    ClusterRouter router(routerOver({&a, &b}));
    ASSERT_TRUE(router.connect());
    router.setTenantQuota("hot", TenantQuota{2, 1});

    ClusterSessionConfig cfg;
    cfg.tenant = "hot";
    cfg.maxInFlight = 16;
    auto s = router.openSession(cfg);
    ASSERT_NE(s, nullptr);

    std::vector<std::future<Response>> futures;
    for (unsigned i = 0; i < 5; ++i) {
        Request r;
        r.kind = RequestKind::Health;
        futures.push_back(s->submit(std::move(r)));
    }
    // The over-cap submissions completed instantly, shed.
    unsigned shed = 0;
    for (auto &f : futures) {
        if (f.wait_for(std::chrono::seconds(0)) ==
            std::future_status::ready) {
            const Response r = f.get();
            EXPECT_EQ(r.status, ServiceStatus::Rejected);
            EXPECT_EQ(r.reject, RejectReason::QuotaExceeded);
            ++shed;
        }
    }
    EXPECT_EQ(shed, 3u);
    EXPECT_EQ(router.stats().shedQuota, 3u);

    router.start();
    // The two admitted requests complete Ok and release their slots.
    unsigned served = 0;
    for (auto &f : futures) {
        if (f.valid() &&
            f.wait_for(std::chrono::seconds(10)) ==
                std::future_status::ready) {
            ++served;
        }
    }
    EXPECT_EQ(served, 2u);
    auto hot = router.admission().tenant("hot");
    for (unsigned spin = 0;
         spin < 200 && hot->inFlight.load() != 0; ++spin) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(hot->inFlight.load(), 0u);
    s->close();
}

// ----------------------------------------------------------------------
// Session resumption over a plain RimeClient
// ----------------------------------------------------------------------

TEST(SessionResumption, ReattachAfterReconnect)
{
    Instance inst(/*resume_grace_ms=*/5000);
    net::ClientConfig cc = fastClient();
    cc.endpoint = inst.endpoint;
    RimeClient client(cc);
    ASSERT_TRUE(client.connect());

    const std::uint64_t session = client.openSession("resumer");
    ASSERT_NE(session, 0u);
    const std::uint64_t token = client.sessionToken(session);
    EXPECT_NE(token, 0u);

    const auto keys = rankKeys(21);
    Request r;
    r.kind = RequestKind::Malloc;
    r.bytes = keys.size() * 4;
    const Response alloc = client.call(session, std::move(r));
    ASSERT_TRUE(alloc.ok());
    Request store;
    store.kind = RequestKind::StoreArray;
    store.start = alloc.addr;
    store.values = keys;
    ASSERT_TRUE(client.call(session, std::move(store)).ok());
    Request init;
    init.kind = RequestKind::Init;
    init.start = alloc.addr;
    init.end = alloc.addr + keys.size() * 4;
    ASSERT_TRUE(client.call(session, std::move(init)).ok());

    Request top1;
    top1.kind = RequestKind::TopK;
    top1.start = alloc.addr;
    top1.end = alloc.addr + keys.size() * 4;
    top1.count = 3;
    const Response first = client.call(session, std::move(top1));
    ASSERT_TRUE(first.ok());
    ASSERT_EQ(first.items.size(), 3u);

    // Drop the connection; the server parks the session instead of
    // closing it.  Reattach and continue extracting.
    client.disconnect();
    ASSERT_TRUE(client.connect());
    EXPECT_TRUE(client.resumeSession(session));

    Request top2;
    top2.kind = RequestKind::TopK;
    top2.start = alloc.addr;
    top2.end = alloc.addr + keys.size() * 4;
    top2.count = keys.size() - 3;
    const Response rest = client.call(session, std::move(top2));
    ASSERT_TRUE(rest.ok() || rest.status == ServiceStatus::Empty);

    std::vector<std::uint64_t> all;
    for (const auto &item : first.items)
        all.push_back(item.raw);
    for (const auto &item : rest.items)
        all.push_back(item.raw);
    EXPECT_EQ(all, keys); // continued exactly; nothing re-extracted
    EXPECT_TRUE(client.closeSession(session));
}

TEST(SessionResumption, WrongTokenAndExpiryAreRejected)
{
    Instance inst(/*resume_grace_ms=*/100);
    net::ClientConfig cc = fastClient();
    cc.endpoint = inst.endpoint;
    RimeClient client(cc);
    ASSERT_TRUE(client.connect());

    const std::uint64_t session = client.openSession("expirer");
    ASSERT_NE(session, 0u);

    // Wrong token: rejected, connection intact.
    client.disconnect();
    ASSERT_TRUE(client.connect());
    EXPECT_FALSE(client.resumeSession(session, 0xdeadbeef));
    EXPECT_TRUE(client.connected());

    // Past the grace: the parked session is reaped and gone.
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    EXPECT_FALSE(client.resumeSession(session));
    EXPECT_EQ(client.protocolErrors(), 0u);
}

} // namespace
