/**
 * @file
 * Tests of the Figure-14 host orchestration (RimeOperation through
 * the library): multi-channel striping, buffered-merge timing
 * behaviour, insert-buffer semantics under interleaved stores,
 * direction mixing, and the ablation knobs.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "rime/ops.hh"

using namespace rime;

namespace
{

LibraryConfig
config(unsigned channels, unsigned chips, unsigned depth = 4)
{
    LibraryConfig cfg;
    cfg.device.channels = channels;
    cfg.device.bufferDepth = depth;
    cfg.device.geometry.chipsPerChannel = chips;
    cfg.device.geometry.banksPerChip = 4;
    cfg.device.geometry.subbanksPerBank = 8;
    cfg.device.geometry.arrayRows = 128;
    cfg.device.geometry.arrayCols = 64;
    return cfg;
}

std::vector<std::uint64_t>
randomU32(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> v(n);
    for (auto &x : v)
        x = rng() & 0xFFFFFFFFULL;
    return v;
}

double
sortSeconds(const LibraryConfig &cfg, std::size_t n)
{
    RimeLibrary lib(cfg);
    auto values = randomU32(n, 5);
    return rimeSort(lib, values, KeyMode::UnsignedFixed).seconds;
}

} // namespace

TEST(Operation, MultiChannelSortCorrect)
{
    // The Figure-14 example topology: two channels of eight chips.
    RimeLibrary lib(config(2, 8));
    auto values = randomU32(4000, 3);
    auto expect = values;
    std::sort(expect.begin(), expect.end());
    EXPECT_EQ(rimeSort(lib, values, KeyMode::UnsignedFixed).values,
              expect);
}

TEST(Operation, MoreChipsAreFaster)
{
    const double t1 = sortSeconds(config(1, 1), 2000);
    const double t4 = sortSeconds(config(1, 4), 2000);
    const double t8 = sortSeconds(config(1, 8), 2000);
    EXPECT_GT(t1, t4 * 1.5);
    EXPECT_GT(t4, t8 * 1.2);
}

TEST(Operation, MoreChannelsAreFaster)
{
    const double c1 = sortSeconds(config(1, 4), 4000);
    const double c4 = sortSeconds(config(4, 4), 4000);
    EXPECT_GT(c1, c4 * 1.5);
}

TEST(Operation, DeeperBuffersNoSlower)
{
    const double d1 = sortSeconds(config(1, 4, 1), 2000);
    const double d8 = sortSeconds(config(1, 4, 8), 2000);
    EXPECT_GE(d1, d8);
}

TEST(Operation, EarlyTerminationSpeedsScans)
{
    auto cfg = config(1, 4);
    const double on = sortSeconds(cfg, 2000);
    cfg.device.timing.earlyTermination = false;
    const double off = sortSeconds(cfg, 2000);
    EXPECT_GT(off, on);
}

TEST(Operation, InterleavedStoresKeepOrderCorrect)
{
    // A stream of stores interleaved with min extractions must always
    // surface the true minimum (insert-buffer path).
    RimeLibrary lib(config(1, 4));
    const std::size_t n = 512;
    auto values = randomU32(n, 9);
    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    const Addr end = *start + n * 4;
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*start, values);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);

    // Mirror with a multiset.
    std::multiset<std::uint64_t> mirror(values.begin(), values.end());
    Rng rng(11);
    std::vector<std::uint8_t> taken(n, 0);
    for (int step = 0; step < 300; ++step) {
        if (rng.below(2) == 0) {
            // Overwrite a random not-yet-extracted slot.
            const std::uint64_t idx = rng.below(n);
            if (taken[idx])
                continue;
            const std::uint64_t neu = rng() & 0xFFFFFFFFULL;
            mirror.erase(mirror.find(values[idx]));
            mirror.insert(neu);
            values[idx] = neu;
            lib.store(*start + idx * 4, neu);
        } else {
            if (mirror.empty())
                break;
            const auto item = lib.rimeMin(*start, end);
            ASSERT_TRUE(item);
            EXPECT_EQ(item->raw, *mirror.begin()) << step;
            mirror.erase(mirror.begin());
            taken[(item->index - *start) / 4] = 1;
        }
    }
}

TEST(Operation, MixedMinAndMaxDrainTheRange)
{
    RimeLibrary lib(config(1, 4));
    const std::size_t n = 100;
    auto values = randomU32(n, 13);
    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    const Addr end = *start + n * 4;
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*start, values);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);

    auto expect = values;
    std::sort(expect.begin(), expect.end());
    std::size_t lo = 0;
    std::size_t hi = n;
    // Alternate min and max; together they drain the sorted range
    // from both ends (shared exclusion latches).
    for (std::size_t i = 0; i < n; ++i) {
        if (i % 2 == 0) {
            const auto item = lib.rimeMin(*start, end);
            ASSERT_TRUE(item);
            EXPECT_EQ(item->raw, expect[lo++]);
        } else {
            const auto item = lib.rimeMax(*start, end);
            ASSERT_TRUE(item);
            EXPECT_EQ(item->raw, expect[--hi]);
        }
    }
    EXPECT_FALSE(lib.rimeMin(*start, end));
    EXPECT_FALSE(lib.rimeMax(*start, end));
}

TEST(Operation, ConcurrentRangesProgressIndependently)
{
    RimeLibrary lib(config(1, 4));
    const std::size_t n = 256;
    auto a = randomU32(n, 17);
    auto b = randomU32(n, 19);
    const auto sa = lib.rimeMalloc(n * 4);
    const auto sb = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(sa && sb);
    lib.rimeInit(*sa, *sa + n * 4, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*sa, a);
    lib.storeArray(*sb, b);
    lib.rimeInit(*sa, *sa + n * 4, KeyMode::UnsignedFixed, 32);
    lib.rimeInit(*sb, *sb + n * 4, KeyMode::UnsignedFixed, 32);

    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    for (std::size_t i = 0; i < n; ++i) {
        const auto ia = lib.rimeMin(*sa, *sa + n * 4);
        const auto ib = lib.rimeMin(*sb, *sb + n * 4);
        ASSERT_TRUE(ia && ib);
        EXPECT_EQ(ia->raw, a[i]);
        EXPECT_EQ(ib->raw, b[i]);
    }
}

TEST(Operation, RemainingTracksExtractionsAndInit)
{
    RimeLibrary lib(config(1, 4));
    const std::size_t n = 64;
    auto values = randomU32(n, 23);
    const auto start = lib.rimeMalloc(n * 4);
    ASSERT_TRUE(start);
    const Addr end = *start + n * 4;
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    lib.storeArray(*start, values);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    EXPECT_EQ(lib.rimeRemaining(*start, end), n);
    for (int i = 0; i < 10; ++i)
        lib.rimeMin(*start, end);
    EXPECT_EQ(lib.rimeRemaining(*start, end), n - 10);
    lib.rimeInit(*start, end, KeyMode::UnsignedFixed, 32);
    EXPECT_EQ(lib.rimeRemaining(*start, end), n);
}
