/**
 * @file
 * Tests of the RIME driver model (section V): contiguous allocation,
 * page rounding, reservation growth, fragmentation-induced failure
 * (NULL return), coalescing on free, and recovery after frees.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/logging.hh"
#include "rime/driver.hh"

using namespace rime;

namespace
{

DriverParams
smallPages()
{
    DriverParams p;
    p.pageBytes = 4096;
    p.startupPages = 4;
    p.growthPages = 4;
    return p;
}

} // namespace

TEST(Driver, AllocationsAreDisjointAndAligned)
{
    RimeDriver driver(1 << 20, smallPages());
    const auto a = driver.allocate(5000);
    const auto b = driver.allocate(5000);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(*a % 4096, 0u);
    EXPECT_EQ(*b % 4096, 0u);
    // 5000 bytes rounds to two pages.
    EXPECT_GE(*b, *a + 8192);
    EXPECT_EQ(driver.allocatedBytes(), 2 * 8192u);
}

TEST(Driver, ReservationGrowsOnDemand)
{
    RimeDriver driver(1 << 20, smallPages());
    EXPECT_EQ(driver.reservedBytes(), 4 * 4096u);
    // Allocate beyond the startup reservation.
    const auto a = driver.allocate(10 * 4096);
    ASSERT_TRUE(a);
    EXPECT_GE(driver.reservedBytes(), 10 * 4096u);
}

TEST(Driver, ExhaustionReturnsNull)
{
    RimeDriver driver(16 * 4096, smallPages());
    const auto a = driver.allocate(16 * 4096);
    ASSERT_TRUE(a);
    EXPECT_FALSE(driver.allocate(4096));
}

TEST(Driver, FragmentationReturnsNullThenFreeRecovers)
{
    // Paper: "the user can try using rime_free to free up unnecessary
    // allocated memory within the RIME region and try again".
    RimeDriver driver(8 * 4096, smallPages());
    const auto a = driver.allocate(3 * 4096);
    const auto b = driver.allocate(2 * 4096);
    const auto c = driver.allocate(3 * 4096);
    ASSERT_TRUE(a && b && c);
    // Free the outer two: 6 pages free but not contiguous.
    driver.release(*a);
    driver.release(*c);
    EXPECT_FALSE(driver.allocate(5 * 4096));
    EXPECT_EQ(driver.largestFreeExtent(), 3 * 4096u);
    // Freeing the middle merges everything.
    driver.release(*b);
    EXPECT_EQ(driver.largestFreeExtent(), 8 * 4096u);
    EXPECT_TRUE(driver.allocate(8 * 4096));
}

TEST(Driver, FreeCoalescesBothNeighbours)
{
    RimeDriver driver(16 * 4096, smallPages());
    const auto a = driver.allocate(4096);
    const auto b = driver.allocate(4096);
    const auto c = driver.allocate(4096);
    ASSERT_TRUE(a && b && c);
    driver.release(*a);
    driver.release(*c);
    driver.release(*b); // merges with both sides
    const auto big = driver.allocate(3 * 4096);
    ASSERT_TRUE(big);
    EXPECT_EQ(*big, *a);
}

TEST(Driver, ReuseAfterFreeIsFirstFit)
{
    RimeDriver driver(1 << 20, smallPages());
    const auto a = driver.allocate(4096);
    driver.allocate(4096);
    driver.release(*a);
    const auto c = driver.allocate(4096);
    ASSERT_TRUE(c);
    EXPECT_EQ(*c, *a);
}

TEST(Driver, ZeroByteAllocationFails)
{
    RimeDriver driver(1 << 20, smallPages());
    EXPECT_FALSE(driver.allocate(0));
}

TEST(Driver, UnknownFreeIsFatal)
{
    RimeDriver driver(1 << 20, smallPages());
    EXPECT_THROW(driver.release(12345), FatalError);
}

TEST(Driver, DoubleFreeIsFatalAndDiagnosed)
{
    RimeDriver driver(1 << 20, smallPages());
    const auto a = driver.allocate(4096);
    ASSERT_TRUE(a);
    driver.release(*a);
    try {
        driver.release(*a);
        FAIL() << "double free was not detected";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("double free"),
                  std::string::npos) << e.what();
    }
    // Re-allocation of the address makes it live again.
    const auto b = driver.allocate(4096);
    ASSERT_TRUE(b);
    EXPECT_EQ(*b, *a);
    driver.release(*b);
}

TEST(Driver, RetiredExtentNeverReallocated)
{
    RimeDriver driver(16 * 4096, smallPages());
    const auto a = driver.allocate(4096);
    ASSERT_TRUE(a);
    driver.release(*a);
    driver.retireExtent(*a, 4096);
    EXPECT_EQ(driver.retiredBytes(), 4096u);
    // Every future allocation must avoid the dead page even after the
    // pool is exhausted and regrown.
    std::vector<Addr> got;
    while (auto x = driver.allocate(4096))
        got.push_back(*x);
    for (const Addr x : got)
        EXPECT_NE(x, *a);
    EXPECT_EQ(got.size(), 15u); // 16 pages minus the retired one
}

TEST(Driver, RetireAlignsOutwardAndCarvesFreeExtents)
{
    RimeDriver driver(16 * 4096, smallPages());
    // Retire a sub-page byte range in the middle of free space: the
    // whole covering page dies, and a spanning allocation no longer
    // fits even though total free bytes would suffice.
    driver.retireExtent(2 * 4096 + 100, 8);
    EXPECT_EQ(driver.retiredBytes(), 4096u);
    const auto big = driver.allocate(16 * 4096);
    EXPECT_FALSE(big);
    EXPECT_EQ(driver.largestFreeExtent(), 13 * 4096u);
    // The two usable sides are still allocatable.
    const auto lo = driver.allocate(2 * 4096);
    ASSERT_TRUE(lo);
    EXPECT_EQ(*lo, 0u);
    const auto hi = driver.allocate(13 * 4096);
    ASSERT_TRUE(hi);
    EXPECT_EQ(*hi, 3 * 4096u);
}

TEST(Driver, FreeingAroundRetiredHoleSkipsIt)
{
    RimeDriver driver(16 * 4096, smallPages());
    const auto a = driver.allocate(3 * 4096);
    ASSERT_TRUE(a);
    // The middle page dies while allocated; the owner keeps the
    // memory until it frees, after which only the outer pages return
    // to the pool.
    driver.retireExtent(*a + 4096, 4096);
    driver.release(*a);
    // Pages 2..15 stay contiguous; page 1 is a hole, page 0 an island.
    EXPECT_EQ(driver.largestFreeExtent(), 14 * 4096u);
    const auto b = driver.allocate(2 * 4096);
    ASSERT_TRUE(b);
    EXPECT_NE(*b, *a + 4096); // never lands on the dead page
}

TEST(Driver, RetireCoalescesOverlappingExtents)
{
    RimeDriver driver(1 << 20, smallPages());
    driver.retireExtent(0, 4096);
    driver.retireExtent(4096, 4096);
    driver.retireExtent(2048, 4096); // overlaps both
    EXPECT_EQ(driver.retiredBytes(), 2 * 4096u);
    driver.retireExtent(0, 2 * 4096); // fully covered, no change
    EXPECT_EQ(driver.retiredBytes(), 2 * 4096u);
}

TEST(Driver, RetireBeyondRegionIsClamped)
{
    RimeDriver driver(4 * 4096, smallPages());
    driver.retireExtent(3 * 4096, 10 * 4096);
    EXPECT_EQ(driver.retiredBytes(), 4096u);
    driver.retireExtent(100 * 4096, 4096); // entirely outside
    EXPECT_EQ(driver.retiredBytes(), 4096u);
    driver.retireExtent(0, 0); // empty
    EXPECT_EQ(driver.retiredBytes(), 4096u);
}

TEST(Driver, AllocationSizeLookup)
{
    RimeDriver driver(1 << 20, smallPages());
    const auto a = driver.allocate(5000);
    ASSERT_TRUE(a);
    EXPECT_EQ(driver.allocationSize(*a), 8192u);
    EXPECT_EQ(driver.allocationSize(*a + 1), 0u);
}

TEST(Driver, LiveAllocationCount)
{
    RimeDriver driver(1 << 20, smallPages());
    const auto a = driver.allocate(4096);
    const auto b = driver.allocate(4096);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(driver.liveAllocations(), 2u);
    driver.release(*a);
    EXPECT_EQ(driver.liveAllocations(), 1u);
}
