/**
 * @file
 * Tests of the data/index H-tree model: priority-encoded index
 * reduction (Figure 10) and select-vector range routing (Figure 11).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rimehw/htree.hh"

using namespace rime;
using namespace rime::rimehw;

TEST(IndexTree, Figure10PriorityEncoding)
{
    // 16 leaves; candidates in leaves 2, 7, and 12.  The tree must
    // report leaf 2 (priority to smaller indices).
    IndexTree tree(16);
    std::vector<TreeSignal> leaves(16);
    for (const unsigned leaf : {2u, 7u, 12u}) {
        leaves[leaf].exists = true;
        leaves[leaf].index = 0; // local row 0
    }
    const auto root = tree.reduce(leaves, 0);
    EXPECT_TRUE(root.exists);
    EXPECT_EQ(root.index, 2u);
}

TEST(IndexTree, LocalIndexBitsArePreserved)
{
    IndexTree tree(8);
    std::vector<TreeSignal> leaves(8);
    leaves[5].exists = true;
    leaves[5].index = 3; // local row 3 within an 4-row leaf
    const auto root = tree.reduce(leaves, 2);
    EXPECT_TRUE(root.exists);
    EXPECT_EQ(root.index, 5u * 4 + 3);
}

TEST(IndexTree, NoCandidateAnywhere)
{
    IndexTree tree(4);
    std::vector<TreeSignal> leaves(4);
    const auto root = tree.reduce(leaves, 4);
    EXPECT_FALSE(root.exists);
}

TEST(IndexTree, RandomizedAgainstLinearScan)
{
    Rng rng(21);
    IndexTree tree(32);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<TreeSignal> leaves(32);
        unsigned expect_leaf = 32;
        unsigned expect_row = 0;
        for (unsigned leaf = 0; leaf < 32; ++leaf) {
            if (rng.below(3) == 0) {
                leaves[leaf].exists = true;
                leaves[leaf].index = rng.below(16);
                if (expect_leaf == 32) {
                    expect_leaf = leaf;
                    expect_row = static_cast<unsigned>(
                        leaves[leaf].index);
                }
            }
        }
        const auto root = tree.reduce(leaves, 4);
        if (expect_leaf == 32) {
            EXPECT_FALSE(root.exists);
        } else {
            ASSERT_TRUE(root.exists);
            EXPECT_EQ(root.index, expect_leaf * 16 + expect_row);
        }
    }
}

TEST(IndexTree, Figure11RangeRouting)
{
    // Figure 11: 16 rows across 4 leaves of 4 rows; range [5, 11).
    IndexTree tree(4);
    const auto routed = tree.routeRange(5, 11, 4);
    ASSERT_EQ(routed.size(), 4u);
    EXPECT_FALSE(routed[0].selected);
    EXPECT_TRUE(routed[1].selected);
    EXPECT_EQ(routed[1].begin, 1u);
    EXPECT_EQ(routed[1].end, 4u);
    EXPECT_TRUE(routed[2].selected);
    EXPECT_EQ(routed[2].begin, 0u);
    EXPECT_EQ(routed[2].end, 3u);
    EXPECT_FALSE(routed[3].selected);
}

TEST(IndexTree, RangeRoutingFullAndEmpty)
{
    IndexTree tree(8);
    const auto all = tree.routeRange(0, 64, 8);
    for (const auto &leaf : all) {
        EXPECT_TRUE(leaf.selected);
        EXPECT_EQ(leaf.begin, 0u);
        EXPECT_EQ(leaf.end, 8u);
    }
    const auto none = tree.routeRange(20, 20, 8);
    for (const auto &leaf : none)
        EXPECT_FALSE(leaf.selected);
}

TEST(IndexTree, RejectsNonPowerOfTwo)
{
    EXPECT_THROW(IndexTree(12), FatalError);
}
