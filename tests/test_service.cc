/**
 * @file
 * Serving-layer tests: the multi-tenant RimeService must (a) produce
 * the same per-session extraction sequences no matter how many client
 * threads drive it, (b) produce bit-identical deterministic stat dumps
 * under the lockstep scheduler across RIME_THREADS and client-thread
 * counts, (c) shed load with immediate Rejected completions instead of
 * ever blocking on the device, and (d) isolate tenants (ownership,
 * reconfiguration, close-time reclamation).  The controller-affinity
 * guard of the underlying library and the service's foundation pieces
 * (bounded queue, shared thread pool) are covered here too.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/bounded_queue.hh"
#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/rng.hh"
#include "rime/api.hh"
#include "service/service.hh"

using namespace rime;
using namespace rime::service;

namespace
{

/** Seeded per-session payload of 32-bit keys. */
std::vector<std::uint64_t>
sessionKeys(std::uint64_t seed, std::size_t n)
{
    Rng rng(7000 + seed);
    std::vector<std::uint64_t> keys(n);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;
    return keys;
}

/** malloc + store + init one session's range; returns [start, end). */
std::pair<Addr, Addr>
setupRange(Session &s, const std::vector<std::uint64_t> &keys)
{
    const std::uint64_t bytes = keys.size() * sizeof(std::uint32_t);
    const Response m = s.call([&] {
        Request r;
        r.kind = RequestKind::Malloc;
        r.bytes = bytes;
        return r;
    }());
    EXPECT_TRUE(m.ok());
    EXPECT_TRUE(s.storeArray(m.addr, keys).get().ok());
    EXPECT_TRUE(
        s.init(m.addr, m.addr + bytes, KeyMode::UnsignedFixed).get().ok());
    return {m.addr, m.addr + bytes};
}

ServiceConfig
fastServiceConfig(unsigned shards)
{
    ServiceConfig cfg;
    cfg.shards = shards;
    cfg.library.device.bitLevel = false;
    return cfg;
}

} // namespace

// ---------------------------------------------------------------------
// Foundations: the bounded MPSC queue and the shared thread pool.
// ---------------------------------------------------------------------

TEST(BoundedQueue, FifoTryPushAndCapacity)
{
    BoundedQueue<int> q(3);
    EXPECT_EQ(q.capacity(), 3u);
    EXPECT_TRUE(q.tryPush(1));
    EXPECT_TRUE(q.tryPush(2));
    EXPECT_TRUE(q.tryPush(3));
    EXPECT_FALSE(q.tryPush(4)) << "push beyond capacity must shed";
    EXPECT_EQ(q.size(), 3u);
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.pop(), 2);
    EXPECT_TRUE(q.tryPush(4));
    EXPECT_EQ(q.pop(), 3);
    EXPECT_EQ(q.pop(), 4);
    EXPECT_EQ(q.tryPop(), std::nullopt);
}

TEST(BoundedQueue, CloseDrainsTailThenReportsShutdown)
{
    BoundedQueue<int> q(4);
    EXPECT_TRUE(q.pushBlocking(7));
    EXPECT_TRUE(q.tryPush(8));
    q.close();
    EXPECT_TRUE(q.closed());
    EXPECT_FALSE(q.tryPush(9));
    EXPECT_FALSE(q.pushBlocking(9));
    EXPECT_EQ(q.pop(), 7);
    EXPECT_EQ(q.pop(), 8);
    EXPECT_EQ(q.pop(), std::nullopt) << "closed and drained";
}

TEST(BoundedQueue, BlockingPopAndPushHandOff)
{
    BoundedQueue<int> q(1);
    ASSERT_TRUE(q.tryPush(1));

    // A producer blocked on a full queue completes once the consumer
    // makes room.
    std::thread producer([&] { EXPECT_TRUE(q.pushBlocking(2)); });
    EXPECT_EQ(q.pop(), 1);
    producer.join();
    EXPECT_EQ(q.pop(), 2);
    // A consumer blocked on an empty queue completes once a value
    // arrives.
    std::thread consumer([&] { EXPECT_EQ(q.pop(), 3); });
    EXPECT_TRUE(q.pushBlocking(3));
    consumer.join();
    q.close();
}

TEST(ThreadPoolService, ConcurrentExternalCallersSerialize)
{
    // Several shard controllers share the global pool; concurrent
    // run() calls from distinct threads must serialize, not panic or
    // lose tasks.
    ThreadPool pool(4);
    std::atomic<std::uint64_t> total{0};
    std::vector<std::thread> callers;
    for (int c = 0; c < 4; ++c) {
        callers.emplace_back([&] {
            for (int i = 0; i < 50; ++i) {
                pool.run(16, [&](unsigned) {
                    total.fetch_add(1, std::memory_order_relaxed);
                });
            }
        });
    }
    for (auto &t : callers)
        t.join();
    EXPECT_EQ(total.load(), 4u * 50u * 16u);
}

// ---------------------------------------------------------------------
// Controller-thread affinity guard of the library.
// ---------------------------------------------------------------------

TEST(Affinity, CrossThreadUseFatalsUntilRebound)
{
    RimeLibrary lib;
    const auto addr = lib.rimeMalloc(4096); // binds the main thread
    ASSERT_TRUE(addr.has_value());

    bool threw = false;
    std::thread foreign([&] {
        try {
            lib.rimeMalloc(64);
        } catch (const FatalError &) {
            threw = true;
        }
    });
    foreign.join();
    EXPECT_TRUE(threw) << "cross-thread API use must raise FatalError";

    // An explicit rebind legitimizes a sequential hand-off...
    std::thread handoff([&] {
        lib.rimeBindThread();
        EXPECT_TRUE(lib.rimeMalloc(64).has_value());
    });
    handoff.join();
    // ...after which the original thread is the foreign one.
    EXPECT_THROW(lib.rimeFree(*addr), FatalError);
    lib.rimeBindThread();
    lib.rimeFree(*addr);
}

TEST(Affinity, ChecksCanBeDisabled)
{
    LibraryConfig cfg;
    cfg.affinityChecks = false;
    RimeLibrary lib(cfg);
    ASSERT_TRUE(lib.rimeMalloc(64).has_value());
    std::thread other([&] {
        EXPECT_TRUE(lib.rimeMalloc(64).has_value());
    });
    other.join();
}

// ---------------------------------------------------------------------
// Service basics: one session end to end.
// ---------------------------------------------------------------------

TEST(ServiceBasics, SingleSessionEndToEnd)
{
    RimeService svc(fastServiceConfig(1));
    auto session = svc.openSession({.tenant = "solo"});
    EXPECT_EQ(session->tenant(), "solo");
    EXPECT_EQ(session->shard(), 0u);

    const auto keys = sessionKeys(1, 256);
    const auto [start, end] = setupRange(*session, keys);

    std::vector<std::uint64_t> expect = keys;
    std::sort(expect.begin(), expect.end());

    // topK returns the k smallest in order; sort streams everything.
    const Response top = session->topK(start, end, 10).get();
    ASSERT_TRUE(top.ok());
    ASSERT_EQ(top.items.size(), 10u);
    for (std::size_t i = 0; i < top.items.size(); ++i)
        EXPECT_EQ(top.items[i].raw, expect[i]) << "rank " << i;
    EXPECT_GT(top.shardTick, 0u);

    // A sort right after draining 10 items ends with Empty and the
    // partial tail; after a re-init it streams everything.
    const Response tail = session->sort(start, end).get();
    EXPECT_EQ(tail.status, ServiceStatus::Empty);
    EXPECT_EQ(tail.items.size(), keys.size() - 10);
    ASSERT_TRUE(session->init(start, end,
                              KeyMode::UnsignedFixed).get().ok());
    const Response rest = session->sort(start, end).get();
    ASSERT_TRUE(rest.ok());
    ASSERT_EQ(rest.items.size(), keys.size());
    for (std::size_t i = 0; i < rest.items.size(); ++i)
        ASSERT_EQ(rest.items[i].raw, expect[i]);

    // largest-first topK after a re-init.
    ASSERT_TRUE(session->init(start, end,
                              KeyMode::UnsignedFixed).get().ok());
    const Response bottom = session->topK(start, end, 5, true).get();
    ASSERT_TRUE(bottom.ok());
    ASSERT_EQ(bottom.items.size(), 5u);
    for (std::size_t i = 0; i < bottom.items.size(); ++i)
        EXPECT_EQ(bottom.items[i].raw, expect[expect.size() - 1 - i]);

    const Response h = session->health().get();
    ASSERT_TRUE(h.ok());
    EXPECT_TRUE(h.health.pristine());
    EXPECT_GT(h.allocatedBytes, 0u);

    ASSERT_TRUE(session->free(start).get().ok());
    session->close();
    // Closed sessions complete immediately instead of queueing.
    EXPECT_EQ(session->health().get().status, ServiceStatus::Closed);
}

TEST(ServiceBasics, AbsurdTopKCountDrainsInsteadOfCrashing)
{
    // A client-supplied count far beyond the range's capacity must not
    // take down the controller thread (the reservation is capped at
    // the range's word capacity); the stream simply drains the range
    // and ends with Empty.
    RimeService svc(fastServiceConfig(1));
    auto session = svc.openSession({.tenant = "greedy"});
    const auto keys = sessionKeys(9, 64);
    const auto [start, end] = setupRange(*session, keys);

    std::vector<std::uint64_t> expect = keys;
    std::sort(expect.begin(), expect.end());

    const Response r = session->topK(
        start, end, std::numeric_limits<std::uint64_t>::max()).get();
    EXPECT_EQ(r.status, ServiceStatus::Empty);
    ASSERT_EQ(r.items.size(), keys.size());
    for (std::size_t i = 0; i < r.items.size(); ++i)
        EXPECT_EQ(r.items[i].raw, expect[i]) << "rank " << i;
    session->close();
}

TEST(ServiceBasics, HealthProbesLeaveNoSessionsBehind)
{
    // Periodic health polling must not accumulate probe sessions: the
    // load snapshot stays empty and no _health tenant groups pollute
    // the stat tree.
    RimeService svc(fastServiceConfig(2));
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(svc.health().pristine());
    for (const ShardLoad &load : svc.loads())
        EXPECT_EQ(load.sessions, 0u) << "shard " << load.shard;
    EXPECT_EQ(svc.statDumpJson().find("_health"), std::string::npos);
}

TEST(ServiceBasics, NamesAreStable)
{
    EXPECT_STREQ(requestKindName(RequestKind::TopK), "topK");
    EXPECT_STREQ(requestKindName(RequestKind::Health), "health");
    EXPECT_STREQ(serviceStatusName(ServiceStatus::Ok), "ok");
    EXPECT_STREQ(serviceStatusName(ServiceStatus::DeadlineExpired),
                 "deadline-expired");
    EXPECT_STREQ(serviceStatusName(ServiceStatus::Closed), "closed");
    EXPECT_STREQ(rejectReasonName(RejectReason::Backpressure),
                 "backpressure");
    EXPECT_STREQ(rejectReasonName(RejectReason::QuotaExceeded),
                 "quota-exceeded");
    EXPECT_STREQ(rejectReasonName(RejectReason::Reconfiguration),
                 "reconfiguration");
}

// ---------------------------------------------------------------------
// Replay equivalence: concurrency must not change what anyone reads.
// ---------------------------------------------------------------------

namespace
{

/** One session's full extraction transcript: (raw, address) pairs. */
using Transcript = std::vector<std::pair<std::uint64_t, std::uint64_t>>;

/**
 * Run the canonical 4-session workload over 2 shards with
 * `client_threads` closed-loop client threads (window of 4 in-flight
 * extractions per session) and return each session's transcript.
 */
std::vector<Transcript>
runReplayWorkload(unsigned client_threads, std::size_t n,
                  std::size_t extracts)
{
    ServiceConfig cfg = fastServiceConfig(2);
    cfg.scheduler.queueCapacity = 256;
    RimeService svc(std::move(cfg));

    constexpr unsigned kSessions = 4;
    std::vector<std::shared_ptr<Session>> sessions;
    std::vector<std::pair<Addr, Addr>> ranges;
    for (unsigned i = 0; i < kSessions; ++i) {
        sessions.push_back(svc.openSession({
            .tenant = "t" + std::to_string(i),
            .maxInFlight = 8,
            .shard = static_cast<int>(i % 2),
        }));
        ranges.push_back(setupRange(*sessions[i], sessionKeys(i, n)));
    }

    std::vector<Transcript> transcripts(kSessions);
    auto driveSession = [&](unsigned i) {
        auto &s = *sessions[i];
        const auto [start, end] = ranges[i];
        std::deque<std::future<Response>> window;
        std::size_t submitted = 0;
        while (transcripts[i].size() < extracts) {
            while (submitted < extracts && window.size() < 4) {
                window.push_back(s.min(start, end));
                ++submitted;
            }
            Response r = window.front().get();
            window.pop_front();
            ASSERT_TRUE(r.ok()) << serviceStatusName(r.status);
            ASSERT_EQ(r.items.size(), 1u);
            transcripts[i].emplace_back(r.items[0].raw,
                                        r.items[0].index);
        }
    };

    if (client_threads <= 1) {
        // Serial replay: each session's script runs to completion
        // alone, in session order.
        for (unsigned i = 0; i < kSessions; ++i)
            driveSession(i);
    } else {
        std::vector<std::thread> clients;
        for (unsigned t = 0; t < client_threads; ++t) {
            clients.emplace_back([&, t] {
                for (unsigned i = t; i < kSessions; i += client_threads)
                    driveSession(i);
            });
        }
        for (auto &c : clients)
            c.join();
    }
    for (auto &s : sessions)
        s->close();
    return transcripts;
}

} // namespace

TEST(ServiceReplay, ConcurrentClientsMatchSerialPerSessionReplay)
{
    const std::size_t n = 256, extracts = 160;
    const auto serial = runReplayWorkload(1, n, extracts);
    const auto concurrent2 = runReplayWorkload(2, n, extracts);
    const auto concurrent4 = runReplayWorkload(4, n, extracts);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        // The values any client reads are independent of how many
        // threads were driving the service.
        EXPECT_EQ(concurrent2[i], serial[i]) << "session " << i;
        EXPECT_EQ(concurrent4[i], serial[i]) << "session " << i;

        // And they are the right values: the sorted prefix.
        auto expect = sessionKeys(i, n);
        std::sort(expect.begin(), expect.end());
        for (std::size_t r = 0; r < extracts; ++r)
            ASSERT_EQ(serial[i][r].first, expect[r])
                << "session " << i << " rank " << r;
    }
}

// ---------------------------------------------------------------------
// Lockstep determinism: bit-identical stat dumps.
// ---------------------------------------------------------------------

namespace
{

/**
 * Seeded closed-loop soak under the lockstep scheduler: 4 sessions
 * (two tenants, different weights) over 2 bit-level shards, driven by
 * `client_groups` client threads.  Returns the deterministic stat
 * dump plus a digest of every extracted value (in session-id order),
 * so callers compare both state and client-visible results.
 * `batch_ops` != 0 overrides the group-commit batch size.
 */
std::string
lockstepSoakDump(unsigned host_threads, unsigned client_groups,
                 std::size_t batch_ops = 0)
{
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.library.device.bitLevel = true;
    cfg.library.device.hostThreads = host_threads;
    cfg.scheduler.deterministic = true;
    cfg.scheduler.queueCapacity = 64;
    cfg.scheduler.maxBatch = 8;
    if (batch_ops != 0)
        cfg.scheduler.batchOps = batch_ops;
    RimeService svc(std::move(cfg));

    constexpr unsigned kSessions = 4;
    constexpr std::size_t kKeys = 96;
    constexpr std::size_t kExtracts = 24;
    std::vector<std::shared_ptr<Session>> sessions;
    for (unsigned i = 0; i < kSessions; ++i) {
        sessions.push_back(svc.openSession({
            .tenant = i < 2 ? "alpha" : "beta",
            .maxInFlight = 8,
            .shard = static_cast<int>(i % 2),
        }));
    }
    svc.start();

    // Setup phase, stepped: under lockstep every round waits for each
    // open session, so submissions proceed one wave at a time across
    // all sessions (submit-all, then wait-all).
    const std::uint64_t bytes = kKeys * sizeof(std::uint32_t);
    std::vector<std::pair<Addr, Addr>> ranges(kSessions);
    {
        std::vector<std::future<Response>> wave;
        for (auto &s : sessions)
            wave.push_back(s->malloc(bytes));
        for (unsigned i = 0; i < kSessions; ++i) {
            const Response m = wave[i].get();
            EXPECT_TRUE(m.ok());
            ranges[i] = {m.addr, m.addr + bytes};
        }
        wave.clear();
        for (unsigned i = 0; i < kSessions; ++i) {
            wave.push_back(sessions[i]->storeArray(
                ranges[i].first, sessionKeys(i, kKeys)));
        }
        for (auto &f : wave)
            EXPECT_TRUE(f.get().ok());
        wave.clear();
        for (unsigned i = 0; i < kSessions; ++i) {
            wave.push_back(sessions[i]->init(
                ranges[i].first, ranges[i].second,
                KeyMode::UnsignedFixed));
        }
        for (auto &f : wave)
            EXPECT_TRUE(f.get().ok());
    }

    // Extraction phase: client threads each drive a disjoint group of
    // sessions, keeping every session exactly one request in flight
    // (submit-all, then wait-all, per step).
    std::vector<std::thread> clients;
    std::vector<std::vector<std::uint64_t>> extracted(kSessions);
    for (unsigned g = 0; g < client_groups; ++g) {
        clients.emplace_back([&, g] {
            std::vector<unsigned> mine;
            for (unsigned i = g; i < kSessions; i += client_groups)
                mine.push_back(i);
            for (std::size_t step = 0; step < kExtracts; ++step) {
                std::vector<std::future<Response>> futs;
                for (const unsigned i : mine) {
                    futs.push_back(sessions[i]->min(ranges[i].first,
                                                    ranges[i].second));
                }
                for (std::size_t k = 0; k < futs.size(); ++k) {
                    const Response r = futs[k].get();
                    EXPECT_TRUE(r.ok());
                    ASSERT_EQ(r.items.size(), 1u);
                    // Each thread owns a disjoint session group, so
                    // these rows never race.
                    extracted[mine[k]].push_back(r.items[0].raw);
                }
            }
        });
    }
    for (auto &c : clients)
        c.join();

    // Close in session-id order: the lockstep rounds wait for the
    // sessions in that same order.
    for (auto &s : sessions)
        s->close();
    std::string out = svc.statDumpJson();
    out += "\nextracted:";
    for (const auto &vals : extracted)
        for (const std::uint64_t v : vals)
            out += " " + std::to_string(v);
    return out;
}

} // namespace

TEST(ServiceDeterminism, LockstepStatDumpBitIdentical)
{
    // The acceptance bar: the deterministic stat dump of a seeded
    // lockstep soak is byte-identical across RIME_THREADS-style host
    // thread counts *and* across client-thread counts.
    const std::string base = lockstepSoakDump(1, 1);
    EXPECT_FALSE(base.empty());
    EXPECT_NE(base.find("\"service\""), std::string::npos);
    EXPECT_NE(base.find("\"alpha\""), std::string::npos);
    EXPECT_EQ(base.find("Host"), std::string::npos)
        << "host-dependent stats leaked into the deterministic dump";
    EXPECT_EQ(base.find("WallNs"), std::string::npos);

    EXPECT_EQ(lockstepSoakDump(1, 2), base) << "client threads leaked";
    EXPECT_EQ(lockstepSoakDump(4, 1), base) << "host threads leaked";
    EXPECT_EQ(lockstepSoakDump(4, 4), base);
}

TEST(ServiceDeterminism, GroupCommitBatchSizeIsInvisibleInLockstep)
{
    // Group commit changes *when* completions are delivered, never
    // what they contain: the deterministic dump and every extracted
    // value must be byte-identical whether completions flush one at a
    // time or in deferred batches of 32, including with host threads
    // and concurrent clients in play.
    const std::string base = lockstepSoakDump(1, 1, /*batch_ops=*/1);
    EXPECT_EQ(lockstepSoakDump(1, 1, 32), base)
        << "batchOps leaked into deterministic state or results";
    EXPECT_EQ(lockstepSoakDump(4, 2, 32), base);
}

// ---------------------------------------------------------------------
// Load shedding: rejects complete immediately, nothing blocks.
// ---------------------------------------------------------------------

TEST(ServiceBackpressure, FullQueueRejectsWithoutBlocking)
{
    // Deterministic mode without start(): the controller is parked, so
    // the queue fills synchronously and the shed path is exact.
    ServiceConfig cfg = fastServiceConfig(1);
    cfg.scheduler.deterministic = true;
    cfg.scheduler.queueCapacity = 4;
    RimeService svc(std::move(cfg));
    auto session = svc.openSession({.maxInFlight = 64});

    std::vector<std::future<Response>> accepted;
    for (int i = 0; i < 4; ++i)
        accepted.push_back(session->health());
    for (int i = 0; i < 3; ++i) {
        auto rejected = session->health();
        // The future is ready *now*: shedding never waits for the
        // device or the controller.
        ASSERT_EQ(rejected.wait_for(std::chrono::seconds(0)),
                  std::future_status::ready);
        const Response r = rejected.get();
        EXPECT_EQ(r.status, ServiceStatus::Rejected);
        EXPECT_EQ(r.reject, RejectReason::Backpressure);
    }

    svc.start();
    for (auto &f : accepted)
        EXPECT_TRUE(f.get().ok()) << "accepted requests still served";
    session->close();
}

TEST(ServiceQuota, InFlightCapRejectsImmediately)
{
    ServiceConfig cfg = fastServiceConfig(1);
    cfg.scheduler.deterministic = true; // parked controller
    cfg.scheduler.queueCapacity = 64;
    RimeService svc(std::move(cfg));
    auto session = svc.openSession({.maxInFlight = 2});

    auto a = session->health();
    auto b = session->health();
    auto over = session->health();
    ASSERT_EQ(over.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    const Response r = over.get();
    EXPECT_EQ(r.status, ServiceStatus::Rejected);
    EXPECT_EQ(r.reject, RejectReason::QuotaExceeded);

    svc.start();
    EXPECT_TRUE(a.get().ok());
    EXPECT_TRUE(b.get().ok());
    // Completions release quota slots: submitting again succeeds.
    EXPECT_TRUE(session->health().get().ok());
    session->close();
}

TEST(ServiceDeadline, SimTickDeadlinesExpireDeterministically)
{
    RimeService svc(fastServiceConfig(1));
    auto session = svc.openSession({});
    const auto keys = sessionKeys(9, 64);
    const auto [start, end] = setupRange(*session, keys);

    // The init alone advanced the shard clock well past tick 1: a
    // deadline of 1 is already expired when the scheduler dequeues.
    const Response late = session->min(start, end, 1).get();
    EXPECT_EQ(late.status, ServiceStatus::DeadlineExpired);
    EXPECT_TRUE(late.items.empty());
    EXPECT_GT(late.shardTick, 1u);

    // A generous deadline and no deadline both serve normally.
    EXPECT_TRUE(session->min(start, end,
                             late.shardTick * 1000).get().ok());
    EXPECT_TRUE(session->min(start, end).get().ok());
    session->close();
}

// ---------------------------------------------------------------------
// Tenant isolation.
// ---------------------------------------------------------------------

TEST(ServiceIsolation, OwnershipAndReconfigurationGuards)
{
    RimeService svc(fastServiceConfig(1));
    auto alice = svc.openSession({.tenant = "alice", .shard = 0});
    auto bob = svc.openSession({.tenant = "bob", .shard = 0});

    const auto keys = sessionKeys(21, 64);
    const auto [astart, aend] = setupRange(*alice, keys);

    const Response bm = bob->malloc(64 * sizeof(std::uint32_t)).get();
    ASSERT_TRUE(bm.ok());

    // Re-moding the device would clobber alice's live operation.
    const Response reconf = bob->init(bm.addr, bm.addr + 64,
                                      KeyMode::UnsignedFixed, 64).get();
    EXPECT_EQ(reconf.status, ServiceStatus::Rejected);
    EXPECT_EQ(reconf.reject, RejectReason::Reconfiguration);

    // A same-mode init on bob's own range is fine.
    EXPECT_TRUE(bob->init(bm.addr, bm.addr + 64 * sizeof(std::uint32_t),
                          KeyMode::UnsignedFixed).get().ok());

    // Bob cannot touch alice's range: extract, store, init, or free.
    const Response steal = bob->min(astart, aend).get();
    EXPECT_EQ(steal.status, ServiceStatus::Rejected);
    EXPECT_EQ(steal.reject, RejectReason::NotOwner);
    const Response poke = bob->storeArray(astart, {1, 2, 3}).get();
    EXPECT_EQ(poke.reject, RejectReason::NotOwner);
    const Response claim = bob->init(astart, aend,
                                     KeyMode::UnsignedFixed).get();
    EXPECT_EQ(claim.reject, RejectReason::NotOwner);
    const Response seize = bob->free(astart).get();
    EXPECT_EQ(seize.reject, RejectReason::NotOwner);

    // Alice is undisturbed: her stream still starts at the minimum.
    auto expect = keys;
    std::sort(expect.begin(), expect.end());
    const Response head = alice->min(astart, aend).get();
    ASSERT_TRUE(head.ok());
    EXPECT_EQ(head.items[0].raw, expect[0]);

    alice->close();
    bob->close();
}

TEST(ServiceIsolation, CloseReclaimsEverythingTheSessionOwned)
{
    RimeService svc(fastServiceConfig(1));
    auto observer = svc.openSession({.tenant = "observer", .shard = 0});
    const std::uint64_t baseline =
        observer->health().get().allocatedBytes;

    auto tenant = svc.openSession({.tenant = "shortlived", .shard = 0});
    ASSERT_TRUE(tenant->malloc(4096).get().ok());
    ASSERT_TRUE(tenant->malloc(8192).get().ok());
    EXPECT_GT(observer->health().get().allocatedBytes, baseline);

    tenant->close(); // close frees every allocation the session held
    EXPECT_EQ(observer->health().get().allocatedBytes, baseline);
    observer->close();
}

// ---------------------------------------------------------------------
// Placement and service-wide health.
// ---------------------------------------------------------------------

TEST(ServicePlacement, PoliciesSpreadSessions)
{
    ServiceConfig cfg = fastServiceConfig(3);
    cfg.placement = std::make_unique<LeastSessionsPlacement>();
    RimeService svc(std::move(cfg));
    EXPECT_EQ(svc.shards(), 3u);

    auto a = svc.openSession({});
    auto b = svc.openSession({});
    auto c = svc.openSession({});
    std::vector<bool> used(3, false);
    used[a->shard()] = used[b->shard()] = used[c->shard()] = true;
    EXPECT_TRUE(used[0] && used[1] && used[2])
        << "least-sessions placement must spread singles";

    const auto loads = svc.loads();
    ASSERT_EQ(loads.size(), 3u);
    for (const auto &l : loads)
        EXPECT_EQ(l.sessions, 1u);

    EXPECT_TRUE(svc.health().pristine());
    a->close();
    b->close();
    c->close();
}

TEST(ServiceStats, TreeContainsShardsAndTenants)
{
    RimeService svc(fastServiceConfig(2));
    auto s = svc.openSession({.tenant = "carol", .shard = 1});
    const auto keys = sessionKeys(5, 64);
    const auto [start, end] = setupRange(*s, keys);
    ASSERT_TRUE(s->topK(start, end, 8).get().ok());
    s->close();

    const std::string deterministic = svc.statDumpJson();
    EXPECT_NE(deterministic.find("\"shard\""), std::string::npos);
    EXPECT_NE(deterministic.find("\"carol\""), std::string::npos);
    EXPECT_EQ(deterministic.find("Host"), std::string::npos);

    // The host view exists too, for profiling runs.
    const std::string host = svc.statDumpJson(true);
    EXPECT_NE(host.find("queueWallNsHost"), std::string::npos);
    EXPECT_NE(host.find("batchSizeHost"), std::string::npos);
}

// ---------------------------------------------------------------------
// Soak: oversubscribed clients over bit-level shards (TSan target).
// ---------------------------------------------------------------------

TEST(ServiceSoak, OversubscribedMixedClients)
{
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.library.device.bitLevel = true; // controllers share the pool
    cfg.scheduler.queueCapacity = 8;    // provoke real backpressure
    RimeService svc(std::move(cfg));

    constexpr unsigned kSessions = 6;
    constexpr std::size_t kKeys = 48;
    std::vector<std::shared_ptr<Session>> sessions;
    std::vector<std::pair<Addr, Addr>> ranges;
    for (unsigned i = 0; i < kSessions; ++i) {
        sessions.push_back(svc.openSession({
            .tenant = "soak" + std::to_string(i % 2),
            .maxInFlight = 4,
        }));
        ranges.push_back(setupRange(*sessions[i], sessionKeys(i, kKeys)));
    }

    std::atomic<std::uint64_t> served{0}, shed{0};
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < 4; ++t) {
        clients.emplace_back([&, t] {
            Rng rng(500 + t);
            for (int iter = 0; iter < 120; ++iter) {
                const unsigned i =
                    static_cast<unsigned>(rng.below(kSessions));
                auto &s = *sessions[i];
                const auto [start, end] = ranges[i];
                Response r;
                switch (rng.below(3)) {
                  case 0:
                    r = s.min(start, end).get();
                    break;
                  case 1:
                    r = s.max(start, end).get();
                    break;
                  default:
                    r = s.health().get();
                    break;
                }
                if (r.status == ServiceStatus::Rejected) {
                    shed.fetch_add(1, std::memory_order_relaxed);
                    std::this_thread::yield();
                } else {
                    EXPECT_TRUE(r.status == ServiceStatus::Ok ||
                                r.status == ServiceStatus::Empty)
                        << serviceStatusName(r.status);
                    served.fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto &c : clients)
        c.join();

    EXPECT_EQ(served.load() + shed.load(), 4u * 120u)
        << "every submission completed exactly once";
    EXPECT_GT(served.load(), 0u);
    EXPECT_TRUE(svc.health().pristine());
    for (auto &s : sessions)
        s->close();
}
