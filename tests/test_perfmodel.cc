/**
 * @file
 * Tests of the multicore execution-time model, the baseline
 * performance model, and the paper's qualitative performance claims:
 * radixsort wins with unlimited bandwidth, quicksort wins on real
 * memories (Figure 2), and HBM beats DDR4.
 */

#include <gtest/gtest.h>

#include "perfmodel/baseline.hh"

using namespace rime;
using namespace rime::cpusim;
using namespace rime::perfmodel;

TEST(MulticoreModel, ComputeBoundScalesWithCores)
{
    MulticoreModel model;
    WorkloadProfile w;
    w.instructions = 1e9;
    w.baseIpc = 2.0;
    w.parallelFraction = 1.0;
    MemoryEnvironment env;
    env.sustainedGBps = 1e9; // effectively unconstrained
    const auto one = model.estimate(w, 1, env);
    const auto four = model.estimate(w, 4, env);
    EXPECT_NEAR(one.totalSeconds / four.totalSeconds, 4.0, 1e-6);
}

TEST(MulticoreModel, AmdahlLimitsScaling)
{
    MulticoreModel model;
    WorkloadProfile w;
    w.instructions = 1e9;
    w.parallelFraction = 0.5;
    MemoryEnvironment env;
    env.sustainedGBps = 1e9;
    const auto one = model.estimate(w, 1, env);
    const auto many = model.estimate(w, 1024, env);
    EXPECT_LT(one.totalSeconds / many.totalSeconds, 2.01);
}

TEST(MulticoreModel, BandwidthBoundDominatesWhenStarved)
{
    MulticoreModel model;
    WorkloadProfile w;
    w.instructions = 1e6; // negligible compute
    w.memReads = 1e8;     // 6.4 GB of traffic
    w.mlp = 16;
    MemoryEnvironment env;
    env.sustainedGBps = 10.0;
    const auto est = model.estimate(w, 64, env);
    EXPECT_NEAR(est.totalSeconds, 6.4e9 / 10e9, 1e-3);
    EXPECT_EQ(est.totalSeconds, est.bandwidthSeconds);
}

TEST(MulticoreModel, LatencyBoundForDependentMisses)
{
    MulticoreModel model;
    WorkloadProfile w;
    w.instructions = 1e6;
    w.memReads = 1e7;
    w.mlp = 1.0; // fully dependent chain
    MemoryEnvironment env;
    env.sustainedGBps = 1e6; // bandwidth never the issue
    env.loadedLatencyNs = 100.0;
    const auto est = model.estimate(w, 1, env);
    EXPECT_NEAR(est.totalSeconds, 1e7 * 100e-9, 1e-6);
}

TEST(BaselinePerf, EnvironmentsAreCachedAndOrdered)
{
    BaselinePerfModel model;
    const auto ddr_seq = model.environment(
        SystemKind::OffChipDdr4, memsim::AccessPattern::Sequential,
        16);
    const auto ddr_rnd = model.environment(
        SystemKind::OffChipDdr4, memsim::AccessPattern::Random, 16);
    const auto hbm_seq = model.environment(
        SystemKind::InPackageHbm, memsim::AccessPattern::Sequential,
        16);
    EXPECT_GT(ddr_seq.sustainedGBps, ddr_rnd.sustainedGBps);
    EXPECT_GT(hbm_seq.sustainedGBps, ddr_seq.sustainedGBps);
    // Second lookup hits the cache (same value).
    const auto again = model.environment(
        SystemKind::OffChipDdr4, memsim::AccessPattern::Sequential,
        16);
    EXPECT_EQ(again.sustainedGBps, ddr_seq.sustainedGBps);
}

TEST(BaselinePerf, Figure2Shapes)
{
    // R/S wins with unlimited bandwidth; with realistic memories it
    // loses its lead (Q/S overtakes it on DDR4).
    BaselinePerfModel model;
    sort::SortModel::Config cfg;
    cfg.sampleCap = 1 << 18;
    sort::SortModel sorts(cfg);
    const std::uint64_t n = 16ULL << 20;
    const unsigned cores = 64;

    const double rs_unl = model.sortThroughputMKps(
        sorts, sort::Algorithm::Radixsort, n, cores,
        SystemKind::Unlimited);
    const double qs_unl = model.sortThroughputMKps(
        sorts, sort::Algorithm::Quicksort, n, cores,
        SystemKind::Unlimited);
    EXPECT_GT(rs_unl, qs_unl);

    const double rs_ddr = model.sortThroughputMKps(
        sorts, sort::Algorithm::Radixsort, n, cores,
        SystemKind::OffChipDdr4);
    const double qs_ddr = model.sortThroughputMKps(
        sorts, sort::Algorithm::Quicksort, n, cores,
        SystemKind::OffChipDdr4);
    EXPECT_GT(qs_ddr, rs_ddr);
}

TEST(BaselinePerf, HbmBeatsDdr4ForEverySort)
{
    BaselinePerfModel model;
    sort::SortModel::Config cfg;
    cfg.sampleCap = 1 << 18;
    sort::SortModel sorts(cfg);
    const std::uint64_t n = 16ULL << 20;
    for (const auto algo : sort::allAlgorithms) {
        const double ddr = model.sortThroughputMKps(
            sorts, algo, n, 64, SystemKind::OffChipDdr4);
        const double hbm = model.sortThroughputMKps(
            sorts, algo, n, 64, SystemKind::InPackageHbm);
        EXPECT_GT(hbm, ddr) << sort::algorithmName(algo);
        EXPECT_GT(ddr, 0.0);
    }
}

TEST(BaselinePerf, ThroughputDropsWithDataSize)
{
    BaselinePerfModel model;
    sort::SortModel::Config cfg;
    cfg.sampleCap = 1 << 18;
    sort::SortModel sorts(cfg);
    const double small = model.sortThroughputMKps(
        sorts, sort::Algorithm::Mergesort, 1ULL << 20, 64,
        SystemKind::OffChipDdr4);
    const double large = model.sortThroughputMKps(
        sorts, sort::Algorithm::Mergesort, 64ULL << 20, 64,
        SystemKind::OffChipDdr4);
    EXPECT_GT(small, large);
}
