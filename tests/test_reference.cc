/**
 * @file
 * Conformance tests of the Algorithm-1 reference transcription
 * itself: against std::min/max_element on decoded values in every
 * mode, against the paper's worked examples, and the step-count
 * semantics (early termination at a unique survivor).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hh"
#include "rimehw/reference.hh"

using namespace rime;
using namespace rime::rimehw;

namespace
{

std::vector<std::uint64_t>
randomRaws(std::size_t n, unsigned k, std::uint64_t seed)
{
    Rng rng(seed);
    const std::uint64_t mask = k >= 64 ? ~0ULL : (1ULL << k) - 1;
    std::vector<std::uint64_t> raws(n);
    for (auto &r : raws)
        r = rng() & mask;
    return raws;
}

} // namespace

TEST(Reference, UnsignedMinMatchesMinElement)
{
    for (int trial = 0; trial < 50; ++trial) {
        const auto raws = randomRaws(37, 16, 100 + trial);
        std::vector<bool> alive(raws.size(), true);
        const auto r = referenceMinMax(raws, alive, 16,
                                       KeyMode::UnsignedFixed, false);
        ASSERT_TRUE(r.found);
        EXPECT_EQ(r.raw,
                  *std::min_element(raws.begin(), raws.end()));
    }
}

TEST(Reference, SignedMinMaxMatchNumericOrder)
{
    for (int trial = 0; trial < 50; ++trial) {
        const auto raws = randomRaws(23, 16, 200 + trial);
        std::vector<std::int64_t> decoded;
        for (const auto raw : raws)
            decoded.push_back(rawToSigned(raw, 16));
        std::vector<bool> alive(raws.size(), true);
        const auto mn = referenceMinMax(raws, alive, 16,
                                        KeyMode::SignedFixed, false);
        const auto mx = referenceMinMax(raws, alive, 16,
                                        KeyMode::SignedFixed, true);
        EXPECT_EQ(rawToSigned(mn.raw, 16),
                  *std::min_element(decoded.begin(), decoded.end()));
        EXPECT_EQ(rawToSigned(mx.raw, 16),
                  *std::max_element(decoded.begin(), decoded.end()));
    }
}

TEST(Reference, FloatMinMaxMatchNumericOrder)
{
    Rng rng(300);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<float> values;
        std::vector<std::uint64_t> raws;
        for (int i = 0; i < 19; ++i) {
            const float f =
                static_cast<float>(rng.uniform(-1e4, 1e4));
            values.push_back(f);
            raws.push_back(floatToRaw(f));
        }
        std::vector<bool> alive(raws.size(), true);
        const auto mn = referenceMinMax(raws, alive, 32,
                                        KeyMode::Float, false);
        const auto mx = referenceMinMax(raws, alive, 32,
                                        KeyMode::Float, true);
        EXPECT_FLOAT_EQ(
            rawToFloat(static_cast<std::uint32_t>(mn.raw)),
            *std::min_element(values.begin(), values.end()));
        EXPECT_FLOAT_EQ(
            rawToFloat(static_cast<std::uint32_t>(mx.raw)),
            *std::max_element(values.begin(), values.end()));
    }
}

TEST(Reference, Figure4StepByStep)
{
    // Figure 4: min of {4.00, 1.75, 1.25, 1.00, 6.50} at alpha=3,
    // beta=2 (5-bit patterns).  The minimum is found and the scan
    // needs all five steps (1.25 vs 1.00 differ only at the last bit).
    const std::vector<std::uint64_t> raws{0b10000, 0b00111, 0b00101,
                                          0b00100, 0b11010};
    std::vector<bool> alive(5, true);
    const auto r = referenceMinMax(raws, alive, 5,
                                   KeyMode::UnsignedFixed, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.index, 3u);
    EXPECT_EQ(r.raw, 0b00100u);
    EXPECT_EQ(r.steps, 5u);
}

TEST(Reference, Figure5FloatExample)
{
    // Figure 5's three 8-bit float-like patterns.
    const std::vector<std::uint64_t> raws{0b01110001, 0b10111010,
                                          0b10101000};
    std::vector<bool> alive(3, true);
    const auto r = referenceMinMax(raws, alive, 8, KeyMode::Float,
                                   false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.raw, 0b10111010u); // -1.625, largest magnitude
    // The paper's walkthrough resolves after 4 of 8 steps.
    EXPECT_EQ(r.steps, 4u);
}

TEST(Reference, SingleSurvivorNeedsNoSteps)
{
    const std::vector<std::uint64_t> raws{42, 17};
    std::vector<bool> alive{false, true};
    const auto r = referenceMinMax(raws, alive, 16,
                                   KeyMode::UnsignedFixed, false);
    ASSERT_TRUE(r.found);
    EXPECT_EQ(r.index, 1u);
    EXPECT_EQ(r.steps, 0u);
}

TEST(Reference, EmptySetNotFound)
{
    const std::vector<std::uint64_t> raws{1, 2, 3};
    std::vector<bool> alive(3, false);
    EXPECT_FALSE(referenceMinMax(raws, alive, 16,
                                 KeyMode::UnsignedFixed, false)
                 .found);
}

TEST(Reference, TiesResolveToLowestIndex)
{
    const std::vector<std::uint64_t> raws{9, 3, 7, 3, 3};
    std::vector<bool> alive(5, true);
    const auto r = referenceMinMax(raws, alive, 8,
                                   KeyMode::UnsignedFixed, false);
    EXPECT_EQ(r.index, 1u);
    // Ties are indistinguishable to the scan: all 8 steps run.
    EXPECT_EQ(r.steps, 8u);
}

TEST(Reference, FullSortMatchesStableSort)
{
    const auto raws = randomRaws(64, 8, 999); // heavy duplication
    const auto order = referenceSort(raws, 8,
                                     KeyMode::UnsignedFixed);
    ASSERT_EQ(order.size(), raws.size());
    for (std::size_t i = 0; i + 1 < order.size(); ++i) {
        EXPECT_LE(raws[order[i]], raws[order[i + 1]]);
        if (raws[order[i]] == raws[order[i + 1]])
            EXPECT_LT(order[i], order[i + 1]); // stability
    }
}
