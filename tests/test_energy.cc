/**
 * @file
 * Tests of the system energy model and the Figure-19 qualitative
 * claims: RIME reduces system energy by ~90%+ when it shortens the
 * execution; HBM's extra static power costs it when it cannot.
 */

#include <gtest/gtest.h>

#include "energy/energy_model.hh"

using namespace rime;
using namespace rime::energy;

TEST(Energy, CpuStaticDominatesLongRuns)
{
    EnergyModel model;
    const auto e = model.baseline(SystemKind::OffChipDdr4,
                                  /*seconds=*/10.0,
                                  /*instructions=*/1e9,
                                  /*accesses=*/1e6, 64);
    // 64 cores x 0.3 W + 8 W uncore = 27.2 W for 10 s = 272 J.
    EXPECT_NEAR(e.cpuJoules, 272.1, 0.5);
    EXPECT_GT(e.cpuJoules, e.memoryJoules);
}

TEST(Energy, HbmSystemCarriesIdleDram)
{
    EnergyModel model;
    // Same execution time on both systems (a workload HBM cannot
    // accelerate): the HBM system burns strictly more energy.
    const double secs = 5.0;
    const auto ddr = model.baseline(SystemKind::OffChipDdr4, secs,
                                    1e9, 1e7, 64);
    const auto hbm = model.baseline(SystemKind::InPackageHbm, secs,
                                    1e9, 1e7, 64);
    EXPECT_GT(hbm.total(), ddr.total());
}

TEST(Energy, HbmWinsWhenItShortensExecution)
{
    EnergyModel model;
    const auto ddr = model.baseline(SystemKind::OffChipDdr4, 10.0,
                                    1e9, 1e8, 64);
    const auto hbm = model.baseline(SystemKind::InPackageHbm, 5.0,
                                    1e9, 1e8, 64);
    EXPECT_LT(hbm.total(), ddr.total() * 0.7);
}

TEST(Energy, RimeAchievesNinetyPercentReduction)
{
    // The Figure-19 situation: RIME cuts a 40 s sort to ~1.5 s;
    // system energy falls by more than 90%.
    EnergyModel model;
    const auto ddr = model.baseline(SystemKind::OffChipDdr4, 40.0,
                                    2e11, 5e8, 64);
    // RIME: short run, little host work, ~2.5 J of device energy.
    const auto rime = model.rimeSystem(1.5, 1e9, 2.5e12, 64, 1);
    EXPECT_LT(rime.total(), ddr.total() * 0.10);
}

TEST(Energy, RimeDevicePowerStaysNearOneWatt)
{
    // 65M extractions at 51.3 nJ / 32 steps-worth each over ~2.3 s
    // is about one watt, matching the paper's 1 W envelope claim.
    const double extraction_nj = 51.3 * (24.0 / 32.0);
    const double total_j = 65e6 * extraction_nj * 1e-9;
    const double seconds = 65e6 / 28e6;
    const double watts = total_j / seconds;
    EXPECT_GT(watts, 0.4);
    EXPECT_LT(watts, 1.5);
}

TEST(Energy, BreakdownTotals)
{
    EnergyBreakdown b;
    b.cpuJoules = 1.0;
    b.memoryJoules = 2.0;
    b.rimeJoules = 3.0;
    EXPECT_DOUBLE_EQ(b.total(), 6.0);
}
