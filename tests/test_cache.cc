/**
 * @file
 * Tests of the cache model: hit/miss behaviour, LRU replacement,
 * write-back victims, the multi-level hierarchy, and invalidation-
 * based sharing.
 */

#include <gtest/gtest.h>

#include <vector>

#include "cachesim/cache.hh"
#include "cachesim/hierarchy.hh"
#include "common/rng.hh"
#include "sort/access_sink.hh"

using namespace rime;
using namespace rime::cachesim;

TEST(Cache, HitAfterFill)
{
    Cache cache({1024, 2, 64, 1});
    EXPECT_FALSE(cache.access(0, false).hit);
    EXPECT_TRUE(cache.access(0, false).hit);
    EXPECT_TRUE(cache.access(32, false).hit); // same block
    EXPECT_FALSE(cache.access(64, false).hit);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B blocks, 2 sets (256 B total).
    Cache cache({256, 2, 64, 1});
    // Set 0 holds blocks 0 and 2 (addresses 0, 128).
    cache.access(0, false);
    cache.access(128, false);
    cache.access(0, false);     // touch 0: 128 becomes LRU
    cache.access(256, false);   // evicts 128
    EXPECT_TRUE(cache.access(0, false).hit);
    EXPECT_FALSE(cache.access(128, false).hit);
}

TEST(Cache, DirtyVictimWritesBack)
{
    Cache cache({256, 2, 64, 1});
    cache.access(0, true); // dirty
    cache.access(128, false);
    const auto r = cache.access(256, false); // evicts dirty block 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache cache({1024, 2, 64, 1});
    cache.access(0, true);
    cache.access(64, false);
    EXPECT_TRUE(cache.invalidate(0));
    EXPECT_FALSE(cache.invalidate(64));
    EXPECT_FALSE(cache.invalidate(4096)); // absent
    EXPECT_FALSE(cache.access(0, false).hit);
}

TEST(Cache, DirectMappedConflicts)
{
    Cache cache({256, 1, 64, 1}); // 4 sets, direct-mapped
    cache.access(0, false);
    cache.access(256, false); // same set, evicts
    EXPECT_FALSE(cache.access(0, false).hit);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({1000, 3, 64, 1}), FatalError);
    EXPECT_THROW(Cache({1024, 2, 63, 1}), FatalError);
}

TEST(Hierarchy, MissesReachMemoryOnce)
{
    Hierarchy h(1, {1024, 2, 64, 2}, {4096, 4, 64, 15});
    std::uint64_t sink_reads = 0;
    h.setMemSink([&](const MemRequest &req) {
        if (req.type == AccessType::Read)
            ++sink_reads;
    });
    h.access(0, 0, AccessType::Read);
    h.access(0, 0, AccessType::Read); // L1 hit
    EXPECT_EQ(h.memReads(), 1u);
    EXPECT_EQ(sink_reads, 1u);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    // Tiny L1 (2 blocks), big L2: after cycling three blocks, the L1
    // misses but the L2 still hits, producing no new memory reads.
    Hierarchy h(1, {128, 1, 64, 2}, {8192, 4, 64, 15});
    h.access(0, 0, AccessType::Read);
    h.access(0, 128, AccessType::Read); // evicts 0 from L1 set 0
    h.access(0, 0, AccessType::Read);   // L1 miss, L2 hit
    EXPECT_EQ(h.memReads(), 2u);
}

TEST(Hierarchy, StreamTrafficMatchesWorkingSet)
{
    Hierarchy h(1);
    const std::uint64_t blocks = 64 * 1024; // 4 MB of 64B blocks
    for (std::uint64_t i = 0; i < blocks; ++i)
        h.access(0, i * 64, AccessType::Read);
    // One fill per block, nothing more.
    EXPECT_EQ(h.memReads(), blocks);
    EXPECT_EQ(h.memWrites(), 0u);
}

TEST(Hierarchy, DirtyDataEventuallyWritesBack)
{
    Hierarchy h(1, CacheConfig::l1d(), {64 * 1024, 4, 64, 15});
    // Write 8 MB through a 64 KB L2: most blocks must write back.
    const std::uint64_t blocks = 128 * 1024;
    for (std::uint64_t i = 0; i < blocks; ++i)
        h.access(0, i * 64, AccessType::Write);
    EXPECT_GT(h.memWrites(), blocks / 2);
}

TEST(Hierarchy, CrossCoreWriteInvalidates)
{
    Hierarchy h(2);
    h.access(0, 0, AccessType::Read); // core 0 caches block 0
    h.access(1, 0, AccessType::Write); // core 1 writes it
    // Core 0 must re-fetch.
    const auto before = h.l1(0).misses();
    h.access(0, 0, AccessType::Read);
    EXPECT_EQ(h.l1(0).misses(), before + 1);
}

TEST(Hierarchy, DirectoryTracksPrivateBlocks)
{
    // A store to a block no other core caches must not disturb the
    // other cores' L1s: the directory knows the block is private.
    Hierarchy h(2, {1024, 2, 64, 2}, {8192, 4, 64, 15},
                /*slow_mode=*/false);
    h.access(0, 0, AccessType::Read);
    EXPECT_EQ(h.directorySharers(0), 0b01u);
    h.access(1, 4096, AccessType::Read); // unrelated block on core 1
    const auto core1_misses = h.l1(1).misses();
    h.access(0, 0, AccessType::Write); // private: no invalidations
    EXPECT_EQ(h.directorySharers(0), 0b01u);
    h.access(1, 4096, AccessType::Read); // line survived the store
    EXPECT_EQ(h.l1(1).misses(), core1_misses);
    EXPECT_EQ(h.stats().values().at("coherenceWritebacks"), 0.0);
}

TEST(Hierarchy, DirectoryTracksSharedStoreInvalidation)
{
    Hierarchy h(2, {1024, 2, 64, 2}, {8192, 4, 64, 15},
                /*slow_mode=*/false);
    h.access(0, 0, AccessType::Read);
    h.access(1, 32, AccessType::Read); // same 64B block
    EXPECT_EQ(h.directorySharers(0), 0b11u);
    h.access(1, 0, AccessType::Write); // must drop core 0's copy
    EXPECT_EQ(h.directorySharers(0), 0b10u);
    const auto before = h.l1(0).misses();
    h.access(0, 0, AccessType::Read);
    EXPECT_EQ(h.l1(0).misses(), before + 1);
    EXPECT_EQ(h.directorySharers(0), 0b11u);
}

TEST(Hierarchy, DirectoryConsistentAfterEvictions)
{
    // Cycle more blocks than a tiny L1 holds, then check the
    // directory's presence bits against ground truth: exactly the
    // blocks still resident (those the core re-hits) keep their bit.
    Hierarchy h(2, {128, 1, 64, 2}, {8192, 4, 64, 15},
                /*slow_mode=*/false);
    const std::uint64_t blocks = 16;
    for (std::uint64_t i = 0; i < blocks; ++i)
        h.access(0, i * 64, AccessType::Read);
    for (std::uint64_t i = 0; i < blocks; ++i) {
        const auto misses = h.l1(0).misses();
        h.access(0, i * 64, AccessType::Read);
        const bool resident = h.l1(0).misses() == misses;
        if (resident) {
            EXPECT_EQ(h.directorySharers(i * 64) & 0b01u, 0b01u)
                << "resident block " << i << " lost its presence bit";
        }
        // A probe that missed re-fills the block, so its bit must be
        // set now in either case.
        EXPECT_EQ(h.directorySharers(i * 64) & 0b01u, 0b01u);
    }
    // Untouched address space carries no stale entries.
    EXPECT_EQ(h.directorySharers(1 << 20), 0u);
}

/**
 * The dirty-forwarding fix: invalidating a *dirty* remote line must
 * push the data down (a coherence writeback), not silently drop it.
 * The tiny L2 guarantees the victim's block has already left L2, so a
 * dropped writeback would be visible as missing memory traffic.
 */
static std::uint64_t
dirtyForwardMemWrites(bool slow_mode)
{
    Hierarchy h(2, {1024, 2, 64, 2}, {128, 1, 64, 15}, slow_mode);
    h.access(0, 0, AccessType::Write); // dirty in core 0's L1
    // Push block 0 out of the 2-set L2 (set 0 conflicts).
    h.access(1, 128, AccessType::Read);
    h.access(1, 256, AccessType::Read);
    const auto writes_before = h.memWrites();
    h.access(1, 0, AccessType::Write); // invalidates core 0's dirty copy
    EXPECT_EQ(h.stats().values().at("coherenceWritebacks"), 1.0);
    return h.memWrites() - writes_before;
}

TEST(Hierarchy, DirtyVictimForwardedOnInvalidate)
{
    // The forwarded data must reach memory (L2 already evicted the
    // block, so the coherence writeback falls through) -- in both the
    // directory path and the reference broadcast path.
    EXPECT_GE(dirtyForwardMemWrites(false), 1u);
    EXPECT_GE(dirtyForwardMemWrites(true), 1u);
}

TEST(Hierarchy, FastMatchesSlowOnRandomTrace)
{
    // The directory + MRU-hint fast path must be observationally
    // identical to the RIME_SLOW_SIM reference path: same per-core
    // cache counters, same below-cache traffic, same stat values.
    const unsigned cores = 3;
    const CacheConfig l1{512, 2, 64, 2};
    const CacheConfig l2{2048, 4, 64, 15};
    Hierarchy fast(cores, l1, l2, /*slow_mode=*/false);
    Hierarchy slow(cores, l1, l2, /*slow_mode=*/true);
    EXPECT_FALSE(fast.slowMode());
    EXPECT_TRUE(slow.slowMode());

    Rng rng(1234);
    // Small footprint so shared dirty blocks and evictions are common.
    const std::uint64_t span = 64 * 64;
    for (unsigned i = 0; i < 50000; ++i) {
        const unsigned core = static_cast<unsigned>(rng.below(cores));
        const Addr addr = rng.below(span) & ~7ULL;
        const AccessType type = rng.below(3) == 0 ? AccessType::Write
                                                  : AccessType::Read;
        fast.access(core, addr, type);
        slow.access(core, addr, type);
    }
    EXPECT_EQ(fast.memReads(), slow.memReads());
    EXPECT_EQ(fast.memWrites(), slow.memWrites());
    for (unsigned c = 0; c < cores; ++c) {
        EXPECT_EQ(fast.l1(c).hits(), slow.l1(c).hits());
        EXPECT_EQ(fast.l1(c).misses(), slow.l1(c).misses());
        EXPECT_EQ(fast.l1(c).writebacks(), slow.l1(c).writebacks());
    }
    EXPECT_EQ(fast.l2().hits(), slow.l2().hits());
    EXPECT_EQ(fast.l2().misses(), slow.l2().misses());
    EXPECT_EQ(fast.l2().writebacks(), slow.l2().writebacks());
    EXPECT_EQ(fast.stats().values(), slow.stats().values());
}

TEST(Hierarchy, BatchedDeliveryMatchesUnbatched)
{
    // AccessBatch must preserve the exact access order, so a batched
    // and an unbatched replay of one trace end with identical
    // hit/miss/writeback and memory counters.
    const unsigned cores = 2;
    const CacheConfig l1{512, 2, 64, 2};
    const CacheConfig l2{2048, 4, 64, 15};
    Hierarchy direct_h(cores, l1, l2, /*slow_mode=*/false);
    Hierarchy batched_h(cores, l1, l2, /*slow_mode=*/false);
    sort::CacheSink direct_sink(direct_h);
    sort::CacheSink batched_sink(batched_h);

    Rng rng(77);
    struct Rec
    {
        unsigned core;
        Addr addr;
        AccessType type;
    };
    std::vector<Rec> trace;
    for (unsigned i = 0; i < 20000; ++i)
        trace.push_back({static_cast<unsigned>(rng.below(cores)),
                         rng.below(4096) * 8,
                         rng.below(2) ? AccessType::Write
                                      : AccessType::Read});

    for (const auto &r : trace)
        direct_sink.access(r.core, r.addr, r.type);
    {
        sort::AccessBatch batch(batched_sink, /*bypass=*/false);
        for (const auto &r : trace)
            batch.access(r.core, r.addr, r.type);
        // Destructor flushes the tail.
    }

    EXPECT_EQ(direct_h.memReads(), batched_h.memReads());
    EXPECT_EQ(direct_h.memWrites(), batched_h.memWrites());
    for (unsigned c = 0; c < cores; ++c) {
        EXPECT_EQ(direct_h.l1(c).hits(), batched_h.l1(c).hits());
        EXPECT_EQ(direct_h.l1(c).misses(), batched_h.l1(c).misses());
        EXPECT_EQ(direct_h.l1(c).writebacks(),
                  batched_h.l1(c).writebacks());
    }
    EXPECT_EQ(direct_h.l2().hits(), batched_h.l2().hits());
    EXPECT_EQ(direct_h.l2().misses(), batched_h.l2().misses());
    EXPECT_EQ(direct_h.stats().values(), batched_h.stats().values());
}

TEST(Hierarchy, CacheResidentReuseVsStreaming)
{
    Rng rng(9);
    Hierarchy resident(1);
    Hierarchy stream(1);
    const std::uint64_t small_span = 2ULL << 20;  // fits the 8MB L2
    const std::uint64_t large_span = 64ULL << 20; // 8x the L2
    const std::uint64_t accesses = 400000;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        resident.access(0, (i * 64) % small_span, AccessType::Read);
        stream.access(0, rng.below(large_span / 64) * 64,
                      AccessType::Read);
    }
    // The cache-resident loop misses only on compulsory fills; the
    // large random scan misses most of the time.
    EXPECT_LE(resident.memReads(), small_span / 64 + 100);
    EXPECT_GT(stream.memReads(), accesses / 2);
}
