/**
 * @file
 * Tests of the cache model: hit/miss behaviour, LRU replacement,
 * write-back victims, the multi-level hierarchy, and invalidation-
 * based sharing.
 */

#include <gtest/gtest.h>

#include "cachesim/cache.hh"
#include "cachesim/hierarchy.hh"
#include "common/rng.hh"

using namespace rime;
using namespace rime::cachesim;

TEST(Cache, HitAfterFill)
{
    Cache cache({1024, 2, 64, 1});
    EXPECT_FALSE(cache.access(0, false).hit);
    EXPECT_TRUE(cache.access(0, false).hit);
    EXPECT_TRUE(cache.access(32, false).hit); // same block
    EXPECT_FALSE(cache.access(64, false).hit);
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 2u);
}

TEST(Cache, LruEviction)
{
    // 2-way, 64B blocks, 2 sets (256 B total).
    Cache cache({256, 2, 64, 1});
    // Set 0 holds blocks 0 and 2 (addresses 0, 128).
    cache.access(0, false);
    cache.access(128, false);
    cache.access(0, false);     // touch 0: 128 becomes LRU
    cache.access(256, false);   // evicts 128
    EXPECT_TRUE(cache.access(0, false).hit);
    EXPECT_FALSE(cache.access(128, false).hit);
}

TEST(Cache, DirtyVictimWritesBack)
{
    Cache cache({256, 2, 64, 1});
    cache.access(0, true); // dirty
    cache.access(128, false);
    const auto r = cache.access(256, false); // evicts dirty block 0
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0u);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(Cache, InvalidateReportsDirtiness)
{
    Cache cache({1024, 2, 64, 1});
    cache.access(0, true);
    cache.access(64, false);
    EXPECT_TRUE(cache.invalidate(0));
    EXPECT_FALSE(cache.invalidate(64));
    EXPECT_FALSE(cache.invalidate(4096)); // absent
    EXPECT_FALSE(cache.access(0, false).hit);
}

TEST(Cache, DirectMappedConflicts)
{
    Cache cache({256, 1, 64, 1}); // 4 sets, direct-mapped
    cache.access(0, false);
    cache.access(256, false); // same set, evicts
    EXPECT_FALSE(cache.access(0, false).hit);
}

TEST(Cache, RejectsBadGeometry)
{
    EXPECT_THROW(Cache({1000, 3, 64, 1}), FatalError);
    EXPECT_THROW(Cache({1024, 2, 63, 1}), FatalError);
}

TEST(Hierarchy, MissesReachMemoryOnce)
{
    Hierarchy h(1, {1024, 2, 64, 2}, {4096, 4, 64, 15});
    std::uint64_t sink_reads = 0;
    h.setMemSink([&](const MemRequest &req) {
        if (req.type == AccessType::Read)
            ++sink_reads;
    });
    h.access(0, 0, AccessType::Read);
    h.access(0, 0, AccessType::Read); // L1 hit
    EXPECT_EQ(h.memReads(), 1u);
    EXPECT_EQ(sink_reads, 1u);
}

TEST(Hierarchy, L2CatchesL1Evictions)
{
    // Tiny L1 (2 blocks), big L2: after cycling three blocks, the L1
    // misses but the L2 still hits, producing no new memory reads.
    Hierarchy h(1, {128, 1, 64, 2}, {8192, 4, 64, 15});
    h.access(0, 0, AccessType::Read);
    h.access(0, 128, AccessType::Read); // evicts 0 from L1 set 0
    h.access(0, 0, AccessType::Read);   // L1 miss, L2 hit
    EXPECT_EQ(h.memReads(), 2u);
}

TEST(Hierarchy, StreamTrafficMatchesWorkingSet)
{
    Hierarchy h(1);
    const std::uint64_t blocks = 64 * 1024; // 4 MB of 64B blocks
    for (std::uint64_t i = 0; i < blocks; ++i)
        h.access(0, i * 64, AccessType::Read);
    // One fill per block, nothing more.
    EXPECT_EQ(h.memReads(), blocks);
    EXPECT_EQ(h.memWrites(), 0u);
}

TEST(Hierarchy, DirtyDataEventuallyWritesBack)
{
    Hierarchy h(1, CacheConfig::l1d(), {64 * 1024, 4, 64, 15});
    // Write 8 MB through a 64 KB L2: most blocks must write back.
    const std::uint64_t blocks = 128 * 1024;
    for (std::uint64_t i = 0; i < blocks; ++i)
        h.access(0, i * 64, AccessType::Write);
    EXPECT_GT(h.memWrites(), blocks / 2);
}

TEST(Hierarchy, CrossCoreWriteInvalidates)
{
    Hierarchy h(2);
    h.access(0, 0, AccessType::Read); // core 0 caches block 0
    h.access(1, 0, AccessType::Write); // core 1 writes it
    // Core 0 must re-fetch.
    const auto before = h.l1(0).misses();
    h.access(0, 0, AccessType::Read);
    EXPECT_EQ(h.l1(0).misses(), before + 1);
}

TEST(Hierarchy, CacheResidentReuseVsStreaming)
{
    Rng rng(9);
    Hierarchy resident(1);
    Hierarchy stream(1);
    const std::uint64_t small_span = 2ULL << 20;  // fits the 8MB L2
    const std::uint64_t large_span = 64ULL << 20; // 8x the L2
    const std::uint64_t accesses = 400000;
    for (std::uint64_t i = 0; i < accesses; ++i) {
        resident.access(0, (i * 64) % small_span, AccessType::Read);
        stream.access(0, rng.below(large_span / 64) * 64,
                      AccessType::Read);
    }
    // The cache-resident loop misses only on compulsory fills; the
    // large random scan misses most of the time.
    EXPECT_LE(resident.memReads(), small_span / 64 + 100);
    EXPECT_GT(stream.memReads(), accesses / 2);
}
