/**
 * @file Unit tests for the bit-manipulation helpers and for
 * scalar-vs-SIMD equivalence of the bit-plane kernel layer
 * (rimehw/kernels.hh): every kernel table entry point, the BitVector
 * bulk ops, and RramArray::columnSearchInto (including the
 * fault-injected disturb path) must produce bit-identical results
 * with the kernels forced scalar and forced SIMD.  On a host without
 * a SIMD table both modes dispatch scalar and the comparisons are
 * trivially true, so the suite stays portable.
 */

#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/bitops.hh"
#include "rimehw/array.hh"
#include "rimehw/bitvector.hh"
#include "rimehw/faults.hh"
#include "rimehw/kernels.hh"
#include "rimehw/unit.hh"

using namespace rime;

TEST(BitOps, Bits)
{
    EXPECT_EQ(bits(0xDEADBEEF, 7, 0), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
    EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(BitOps, Bit)
{
    EXPECT_TRUE(bit(0b100, 2));
    EXPECT_FALSE(bit(0b100, 1));
    EXPECT_TRUE(bit(1ULL << 63, 63));
}

TEST(BitOps, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xF), 0xF0u);
    EXPECT_EQ(insertBits(0xFF, 7, 4, 0x0), 0x0Fu);
    EXPECT_EQ(insertBits(0, 63, 0, ~0ULL), ~0ULL);
}

TEST(BitOps, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4095));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
}

TEST(BitOps, Log2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(BitOps, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(65, 64), 64u);
    EXPECT_EQ(roundDown(63, 64), 0u);
}

TEST(BitOps, CommonPrefixLength)
{
    EXPECT_EQ(commonPrefixLength(0, 0, 32), 32u);
    EXPECT_EQ(commonPrefixLength(0b1000, 0b0000, 4), 0u);
    EXPECT_EQ(commonPrefixLength(0b1010, 0b1011, 4), 3u);
    EXPECT_EQ(commonPrefixLength(0b1010, 0b1000, 4), 2u);
    EXPECT_EQ(commonPrefixLength(~0ULL, ~0ULL ^ 1ULL, 64), 63u);
    EXPECT_EQ(commonPrefixLength(1ULL << 63, 0, 64), 0u);
}

// ---------------------------------------------------------------------
// Scalar-vs-SIMD kernel equivalence.
// ---------------------------------------------------------------------

namespace
{

using rimehw::BitVector;
using rimehw::RramArray;
namespace kernels = rimehw::kernels;

/** Restores the RIME_SIMD-selected dispatch when the test exits. */
struct ModeGuard
{
    ~ModeGuard() { kernels::setMode(kernels::envMode()); }
};

std::vector<std::uint64_t>
randomWords(std::mt19937_64 &rng, unsigned n)
{
    std::vector<std::uint64_t> v(n);
    for (auto &w : v)
        w = rng();
    return v;
}

/** Word counts straddling every vector chunk width and its tails. */
const unsigned kWordCounts[] = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 16, 33};

/** Bit widths exercising full words, tail masks, and one word. */
const unsigned kBitSizes[] = {1, 63, 64, 65, 128, 130, 511, 512, 577};

BitVector
randomBits(std::mt19937_64 &rng, unsigned nbits)
{
    BitVector v(nbits);
    for (unsigned w = 0; w < v.numWords(); ++w)
        v.setWord(w, rng());
    // Mask the tail like setAll does, so invariants hold.
    if (nbits & 63)
        v.setWord(v.numWords() - 1,
                  v.word(v.numWords() - 1) &
                      ((1ULL << (nbits & 63)) - 1));
    return v;
}

} // namespace

TEST(SimdKernels, DispatchModes)
{
    ModeGuard guard;
    kernels::setMode(kernels::Mode::Scalar);
    EXPECT_STREQ(kernels::isaName(), "scalar");
    EXPECT_FALSE(kernels::simdEnabled());
    kernels::setMode(kernels::Mode::Simd);
    if (kernels::simdAvailable()) {
        EXPECT_TRUE(kernels::simdEnabled());
        EXPECT_STREQ(kernels::isaName(),
                     kernels::availableIsaName());
    } else {
        EXPECT_FALSE(kernels::simdEnabled());
        EXPECT_STREQ(kernels::isaName(), "scalar");
    }
    kernels::setMode(kernels::Mode::Auto);
    EXPECT_EQ(kernels::simdEnabled(), kernels::simdAvailable());
}

/** Every kernel table entry point, against the scalar table. */
TEST(SimdKernels, TableEntryPointsMatchScalar)
{
    ModeGuard guard;
    kernels::setMode(kernels::Mode::Scalar);
    const kernels::KernelTable &ref = kernels::active();
    kernels::setMode(kernels::Mode::Simd);
    const kernels::KernelTable &simd = kernels::active();

    std::mt19937_64 rng(0x5eed);
    for (const unsigned n : kWordCounts) {
        for (int round = 0; round < 8; ++round) {
            const auto col = randomWords(rng, n);
            const auto disturb = randomWords(rng, n);
            auto select = randomWords(rng, n);
            // Dense selects make anyMatch/anyMismatch nontrivial.
            if (round & 1)
                for (auto &w : select)
                    w |= ~(rng() & rng());

            for (const bool bit : {false, true}) {
                for (const bool faulty : {false, true}) {
                    const std::uint64_t *d =
                        faulty ? disturb.data() : nullptr;
                    std::vector<std::uint64_t> m0(n, 0xAA), m1(n, 0x55);
                    const auto s0 = ref.columnSearch(
                        col.data(), d, select.data(), m0.data(), n,
                        bit);
                    const auto s1 = simd.columnSearch(
                        col.data(), d, select.data(), m1.data(), n,
                        bit);
                    EXPECT_EQ(m0, m1);
                    EXPECT_EQ(s0.anyMatch, s1.anyMatch);
                    EXPECT_EQ(s0.anyMismatch, s1.anyMismatch);
                }
            }

            for (const bool bit : {false, true}) {
                const auto s0 = ref.searchSignals(
                    col.data(), select.data(), n, bit);
                const auto s1 = simd.searchSignals(
                    col.data(), select.data(), n, bit);
                EXPECT_EQ(s0.anyMatch, s1.anyMatch);
                EXPECT_EQ(s0.anyMismatch, s1.anyMismatch);

                auto sel0 = select;
                auto sel1 = select;
                const unsigned c0 = ref.commitSearch(
                    sel0.data(), col.data(), n, bit);
                const unsigned c1 = simd.commitSearch(
                    sel1.data(), col.data(), n, bit);
                EXPECT_EQ(c0, c1);
                EXPECT_EQ(sel0, sel1);

                // The fused pair must reproduce the recorded-match
                // pair: signals equal to columnSearch's, committed
                // select equal to select &= ~match.
                std::vector<std::uint64_t> m(n, 0);
                auto selr = select;
                const auto sr = ref.columnSearch(
                    col.data(), nullptr, select.data(), m.data(), n,
                    bit);
                const unsigned cr = ref.andNotCount(
                    selr.data(), m.data(), n);
                EXPECT_EQ(sr.anyMatch, s0.anyMatch);
                EXPECT_EQ(sr.anyMismatch, s0.anyMismatch);
                EXPECT_EQ(cr, c0);
                EXPECT_EQ(selr, sel0);
            }

            const auto base = randomWords(rng, n);
            const auto mask = randomWords(rng, n);
            auto d0 = randomWords(rng, n);
            auto d1 = d0;

            EXPECT_EQ(ref.andNotCount(d0.data(), mask.data(), n),
                      simd.andNotCount(d1.data(), mask.data(), n));
            EXPECT_EQ(d0, d1);

            EXPECT_EQ(ref.assignAndNotCount(d0.data(), base.data(),
                                            mask.data(), n),
                      simd.assignAndNotCount(d1.data(), base.data(),
                                             mask.data(), n));
            EXPECT_EQ(d0, d1);

            ref.andNot(d0.data(), col.data(), n);
            simd.andNot(d1.data(), col.data(), n);
            EXPECT_EQ(d0, d1);

            ref.andWords(d0.data(), select.data(), n);
            simd.andWords(d1.data(), select.data(), n);
            EXPECT_EQ(d0, d1);

            ref.orWords(d0.data(), base.data(), n);
            simd.orWords(d1.data(), base.data(), n);
            EXPECT_EQ(d0, d1);

            EXPECT_EQ(ref.popcount(d0.data(), n),
                      simd.popcount(d1.data(), n));

            const std::uint64_t v = rng();
            ref.fill(d0.data(), v, n);
            simd.fill(d1.data(), v, n);
            EXPECT_EQ(d0, d1);
        }
    }
}

/** BitVector bulk ops, run once per mode on identical inputs. */
TEST(SimdKernels, BitVectorOpsMatchScalar)
{
    ModeGuard guard;
    std::mt19937_64 rng(0xb17);
    for (const unsigned nbits : kBitSizes) {
        for (int round = 0; round < 6; ++round) {
            const auto seed = rng();
            std::mt19937_64 mk0(seed), mk1(seed);
            kernels::setMode(kernels::Mode::Scalar);
            BitVector a0 = randomBits(mk0, nbits);
            BitVector b0 = randomBits(mk0, nbits);
            kernels::setMode(kernels::Mode::Simd);
            BitVector a1 = randomBits(mk1, nbits);
            BitVector b1 = randomBits(mk1, nbits);
            ASSERT_EQ(a0, a1);

            const unsigned begin = static_cast<unsigned>(
                rng() % nbits);
            const unsigned end = begin + static_cast<unsigned>(
                rng() % (nbits - begin + 1));

            const auto run = [&](BitVector &a, BitVector &b,
                                 unsigned *out) {
                a.setRange(begin, end);
                out[0] = a.count();
                a.clearRange(begin / 2, end);
                out[1] = a.count();
                a |= b;
                a.andNot(b);
                out[2] = a.andNotCount(b);
                a &= b;
                out[3] = a.assignAndNotCount(b, a);
                a.setAll();
                out[4] = a.count();
                a.clearAll();
                out[5] = a.count();
                a = b;
            };

            unsigned c0[6], c1[6];
            kernels::setMode(kernels::Mode::Scalar);
            run(a0, b0, c0);
            kernels::setMode(kernels::Mode::Simd);
            run(a1, b1, c1);
            for (int i = 0; i < 6; ++i)
                EXPECT_EQ(c0[i], c1[i]);
            EXPECT_EQ(a0, a1);
        }
    }
}

/** Column search through RramArray, fault-free. */
TEST(SimdKernels, ColumnSearchMatchesScalar)
{
    ModeGuard guard;
    std::mt19937_64 rng(0xc01);
    RramArray array(512, 64);
    for (unsigned row = 0; row < 512; ++row)
        array.writeRowBits(row, 0, 64, rng());

    for (int round = 0; round < 32; ++round) {
        const unsigned col = static_cast<unsigned>(rng() % 64);
        const bool bit = rng() & 1;
        const auto seed = rng();
        std::mt19937_64 mk0(seed), mk1(seed);

        kernels::setMode(kernels::Mode::Scalar);
        BitVector sel0 = randomBits(mk0, 512);
        BitVector m0(512);
        const auto s0 = array.columnSearchInto(col, bit, sel0, m0);

        kernels::setMode(kernels::Mode::Simd);
        BitVector sel1 = randomBits(mk1, 512);
        BitVector m1(512);
        const auto s1 = array.columnSearchInto(col, bit, sel1, m1);

        EXPECT_EQ(m0, m1);
        EXPECT_EQ(s0.anyMatch, s1.anyMatch);
        EXPECT_EQ(s0.anyMismatch, s1.anyMismatch);
    }
}

/** Column search with transient read disturb injected: the SIMD
 *  path gathers per-word disturb masks and XORs them vectorized;
 *  results must equal the scalar per-word loop in every epoch. */
TEST(SimdKernels, ColumnSearchFaultPathMatchesScalar)
{
    ModeGuard guard;
    rimehw::FaultParams fp;
    fp.seed = 7;
    fp.readDisturbRate = 0.02;
    rimehw::FaultModel faults(fp);

    std::mt19937_64 rng(0xfa01);
    RramArray array(512, 64);
    array.attachFaults(&faults, 3);
    for (unsigned row = 0; row < 512; ++row)
        array.writeRowBits(row, 0, 64, rng());

    for (int round = 0; round < 32; ++round) {
        const unsigned col = static_cast<unsigned>(rng() % 64);
        const bool bit = rng() & 1;
        BitVector sel = randomBits(rng, 512);
        BitVector m0(512), m1(512);

        kernels::setMode(kernels::Mode::Scalar);
        const auto s0 = array.columnSearchInto(col, bit, sel, m0);
        kernels::setMode(kernels::Mode::Simd);
        const auto s1 = array.columnSearchInto(col, bit, sel, m1);

        EXPECT_EQ(m0, m1);
        EXPECT_EQ(s0.anyMatch, s1.anyMatch);
        EXPECT_EQ(s0.anyMismatch, s1.anyMismatch);
        if (round % 4 == 3)
            faults.advanceEpoch();
    }
}

/** Arrays taller than the kernel disturb-gather scratch (16 words)
 *  must fall back to the scalar reference path under SIMD and still
 *  agree with forced-scalar results. */
TEST(SimdKernels, TallFaultyArrayFallsBackToScalar)
{
    ModeGuard guard;
    rimehw::FaultParams fp;
    fp.seed = 11;
    fp.readDisturbRate = 0.01;
    rimehw::FaultModel faults(fp);

    std::mt19937_64 rng(0x7a11);
    RramArray array(2048, 8); // 32 words per column > 16
    array.attachFaults(&faults, 5);
    for (unsigned row = 0; row < 2048; ++row)
        array.writeRowBits(row, 0, 8, rng() & 0xFF);

    for (int round = 0; round < 8; ++round) {
        const unsigned col = static_cast<unsigned>(rng() % 8);
        const bool bit = rng() & 1;
        BitVector sel = randomBits(rng, 2048);
        BitVector m0(2048), m1(2048);

        kernels::setMode(kernels::Mode::Scalar);
        const auto s0 = array.columnSearchInto(col, bit, sel, m0);
        kernels::setMode(kernels::Mode::Simd);
        const auto s1 = array.columnSearchInto(col, bit, sel, m1);

        EXPECT_EQ(m0, m1);
        EXPECT_EQ(s0.anyMatch, s1.anyMatch);
        EXPECT_EQ(s0.anyMismatch, s1.anyMismatch);
    }
}

/** A full bit-serial scan through ArrayUnit: the SIMD unit takes the
 *  signals-only probe and, on alternating steps, the fused commit
 *  (commitFusedAndCount) or the legacy commit after a fused probe
 *  (applyCommit's recompute branch); every step must reproduce the
 *  scalar recorded-match scan's signals, select vector, and survivor
 *  counts. */
TEST(SimdKernels, FusedUnitScanMatchesRecorded)
{
    ModeGuard guard;
    std::mt19937_64 rng(0xf00d);
    RramArray array(512, 64);
    for (unsigned row = 0; row < 512; ++row)
        array.writeRowBits(row, 0, 32, rng() & 0xFFFFFFFFULL);

    rimehw::ArrayUnit unit0(&array, 0, 32);
    rimehw::ArrayUnit unit1(&array, 0, 32);
    unit0.setRange(0, 512);
    unit1.setRange(0, 512);

    kernels::setMode(kernels::Mode::Scalar);
    const unsigned b0 = unit0.beginExtraction();
    kernels::setMode(kernels::Mode::Simd);
    const unsigned b1 = unit1.beginExtraction();
    ASSERT_EQ(b0, b1);

    for (unsigned s = 0; s < 32; ++s) {
        const bool bit = rng() & 1;
        kernels::setMode(kernels::Mode::Scalar);
        const auto p0 = unit0.probe(s, bit);
        kernels::setMode(kernels::Mode::Simd);
        const auto p1 = unit1.probe(s, bit);
        EXPECT_EQ(p0.anyMatch, p1.anyMatch);
        EXPECT_EQ(p0.anyMismatch, p1.anyMismatch);

        const bool exclude = p0.anyMatch && p0.anyMismatch;
        kernels::setMode(kernels::Mode::Scalar);
        const unsigned n0 = unit0.commitAndCount(exclude);
        kernels::setMode(kernels::Mode::Simd);
        const unsigned n1 = (exclude && (s & 1))
            ? unit1.commitFusedAndCount(s, bit)
            : unit1.commitAndCount(exclude);
        EXPECT_EQ(n0, n1);
        EXPECT_EQ(unit0.select(), unit1.select());
        EXPECT_EQ(unit0.survivorCount(), unit1.survivorCount());
    }
}
