/** @file Unit tests for the bit-manipulation helpers. */

#include <gtest/gtest.h>

#include "common/bitops.hh"

using namespace rime;

TEST(BitOps, Bits)
{
    EXPECT_EQ(bits(0xDEADBEEF, 7, 0), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 15, 8), 0xBEu);
    EXPECT_EQ(bits(0xDEADBEEF, 31, 0), 0xDEADBEEFu);
    EXPECT_EQ(bits(~0ULL, 63, 0), ~0ULL);
}

TEST(BitOps, Bit)
{
    EXPECT_TRUE(bit(0b100, 2));
    EXPECT_FALSE(bit(0b100, 1));
    EXPECT_TRUE(bit(1ULL << 63, 63));
}

TEST(BitOps, InsertBits)
{
    EXPECT_EQ(insertBits(0, 7, 4, 0xF), 0xF0u);
    EXPECT_EQ(insertBits(0xFF, 7, 4, 0x0), 0x0Fu);
    EXPECT_EQ(insertBits(0, 63, 0, ~0ULL), ~0ULL);
}

TEST(BitOps, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(4096));
    EXPECT_FALSE(isPowerOf2(4095));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
}

TEST(BitOps, Log2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
}

TEST(BitOps, Rounding)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundDown(65, 64), 64u);
    EXPECT_EQ(roundDown(63, 64), 0u);
}

TEST(BitOps, CommonPrefixLength)
{
    EXPECT_EQ(commonPrefixLength(0, 0, 32), 32u);
    EXPECT_EQ(commonPrefixLength(0b1000, 0b0000, 4), 0u);
    EXPECT_EQ(commonPrefixLength(0b1010, 0b1011, 4), 3u);
    EXPECT_EQ(commonPrefixLength(0b1010, 0b1000, 4), 2u);
    EXPECT_EQ(commonPrefixLength(~0ULL, ~0ULL ^ 1ULL, 64), 63u);
    EXPECT_EQ(commonPrefixLength(1ULL << 63, 0, 64), 0u);
}
