/** @file Unit tests for BitVector, RramArray, and ArrayUnit. */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "rimehw/array.hh"
#include "rimehw/bitvector.hh"
#include "rimehw/unit.hh"

using namespace rime;
using namespace rime::rimehw;

TEST(BitVector, BasicOps)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.count(), 0u);
    EXPECT_FALSE(v.any());
    v.set(0);
    v.set(64);
    v.set(129);
    EXPECT_EQ(v.count(), 3u);
    EXPECT_TRUE(v.test(64));
    EXPECT_FALSE(v.test(63));
    EXPECT_EQ(v.firstSet(), 0u);
    v.set(0, false);
    EXPECT_EQ(v.firstSet(), 64u);
    v.clearAll();
    EXPECT_EQ(v.firstSet(), 130u);
}

TEST(BitVector, RangeAndLogicOps)
{
    BitVector a(100);
    BitVector b(100);
    a.setRange(10, 20);
    b.setRange(15, 25);
    EXPECT_EQ(a.count(), 10u);

    BitVector and_v = a;
    and_v &= b;
    EXPECT_EQ(and_v.count(), 5u);
    EXPECT_TRUE(and_v.test(15));
    EXPECT_FALSE(and_v.test(10));

    BitVector or_v = a;
    or_v |= b;
    EXPECT_EQ(or_v.count(), 15u);

    BitVector diff = a;
    diff.andNot(b);
    EXPECT_EQ(diff.count(), 5u);
    EXPECT_TRUE(diff.test(10));
    EXPECT_FALSE(diff.test(15));
}

TEST(BitVector, SetAllRespectsSize)
{
    BitVector v(70);
    v.setAll();
    EXPECT_EQ(v.count(), 70u);
}

TEST(RramArray, WriteReadRoundTrip)
{
    RramArray array(16, 64);
    Rng rng(3);
    for (unsigned row = 0; row < 16; ++row) {
        const std::uint64_t value = rng() & 0xFFFFFFFF;
        array.writeRowBits(row, 8, 32, value);
        EXPECT_EQ(array.readRowBits(row, 8, 32), value);
    }
}

TEST(RramArray, ColumnSearchMatchesStoredBits)
{
    RramArray array(8, 16);
    // Column 3 bits per row: 1,0,1,0,1,0,1,0.
    for (unsigned row = 0; row < 8; ++row)
        array.writeRowBits(row, 3, 1, row % 2 == 0 ? 1 : 0);

    BitVector select(8);
    select.setRange(0, 8);
    const auto r1 = array.columnSearch(3, true, select);
    EXPECT_TRUE(r1.anyMatch);
    EXPECT_TRUE(r1.anyMismatch);
    EXPECT_EQ(r1.match.count(), 4u);
    EXPECT_TRUE(r1.match.test(0));
    EXPECT_FALSE(r1.match.test(1));

    // Restrict the selection to odd rows: searching for 1 matches
    // nothing.
    BitVector odd(8);
    for (unsigned row = 1; row < 8; row += 2)
        odd.set(row);
    const auto r2 = array.columnSearch(3, true, odd);
    EXPECT_FALSE(r2.anyMatch);
    EXPECT_TRUE(r2.anyMismatch);

    const auto r3 = array.columnSearch(3, false, odd);
    EXPECT_TRUE(r3.anyMatch);
    EXPECT_FALSE(r3.anyMismatch);
}

TEST(ArrayUnit, SlotGroupsAreIndependent)
{
    RramArray array(8, 64);
    ArrayUnit u0(&array, 0, 16);
    ArrayUnit u1(&array, 1, 16);
    u0.writeValue(2, 0xAAAA);
    u1.writeValue(2, 0x5555);
    EXPECT_EQ(u0.readValue(2), 0xAAAAu);
    EXPECT_EQ(u1.readValue(2), 0x5555u);
}

TEST(ArrayUnit, SelectAndExclusionLatches)
{
    RramArray array(8, 32);
    ArrayUnit unit(&array, 0, 32);
    for (unsigned row = 0; row < 8; ++row)
        unit.writeValue(row, row + 1);
    unit.setRange(2, 6);
    unit.clearExclusions(0, 8);
    unit.beginExtraction();
    EXPECT_EQ(unit.survivorCount(), 4u);
    EXPECT_EQ(unit.firstSurvivor(), 2u);

    unit.exclude(2);
    unit.beginExtraction();
    EXPECT_EQ(unit.survivorCount(), 3u);
    EXPECT_EQ(unit.firstSurvivor(), 3u);

    unit.clearExclusions(0, 8);
    unit.beginExtraction();
    EXPECT_EQ(unit.survivorCount(), 4u);
}

TEST(ArrayUnit, ProbeAndCommit)
{
    RramArray array(8, 8);
    ArrayUnit unit(&array, 0, 8);
    // Values 4..11 in rows 0..7 (MSB at column 0).
    for (unsigned row = 0; row < 8; ++row)
        unit.writeValue(row, row + 4);
    unit.setRange(0, 8);
    unit.clearExclusions(0, 8);
    unit.beginExtraction();

    // Bit 3 (step 4 from the MSB of an 8-bit word): values 8..11 have
    // it set.
    const auto probe = unit.probe(4, true);
    EXPECT_TRUE(probe.anyMatch);
    EXPECT_TRUE(probe.anyMismatch);
    unit.commit(true);
    EXPECT_EQ(unit.survivorCount(), 4u); // 4..7 remain
    EXPECT_EQ(unit.firstSurvivor(), 0u);

    // Without a commit the selection is unchanged.
    unit.probe(5, true);
    unit.commit(false);
    EXPECT_EQ(unit.survivorCount(), 4u);
}
