/**
 * @file
 * Wire-protocol tests: a remote RimeClient driving a RimeServer over
 * TCP and Unix-domain sockets must be indistinguishable from holding
 * an in-process Session -- same responses for the same script, and
 * (under deterministic scheduling) a bit-identical stat dump.
 *
 * The protocol-robustness half talks to the server with a raw socket:
 * a handshake frame delivered one byte at a time must still be parsed
 * (Truncated = wait for more, never an error), and a flipped payload
 * bit must be answered with a wire Error and a closed connection --
 * never undefined behaviour, never a misparsed request.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/bitio.hh"
#include "common/fdio.hh"
#include "common/rng.hh"
#include "net/client.hh"
#include "net/server.hh"
#include "net/socket.hh"
#include "service/service.hh"
#include "service/wire.hh"

using namespace rime;
using namespace rime::service;
using namespace rime::net;
namespace wire = rime::service::wire;

namespace
{

// Default the global scan pool to inline -- but let CI override with
// RIME_THREADS=N: the lockstep test's wire-vs-in-process stat dump
// comparison must hold for any pool size, and the CI wire smoke runs
// it at 1 and 4 threads.
const bool kSingleThreadedPool = [] {
    ::setenv("RIME_THREADS", "1", /*overwrite=*/0);
    return true;
}();

constexpr std::size_t kKeys = 48;
constexpr std::uint64_t kRangeBytes = kKeys * sizeof(std::uint32_t);

std::vector<std::uint64_t>
scriptKeys(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::uint64_t> keys(kKeys);
    for (auto &k : keys)
        k = rng() & 0xFFFFFFFFULL;
    return keys;
}

/** The full-session script: malloc, store, init, topK, sort, free. */
std::vector<Request>
scriptRequests(Addr base)
{
    std::vector<Request> reqs;
    Request r;
    r.kind = RequestKind::Malloc;
    r.bytes = kRangeBytes;
    reqs.push_back(r);

    r = Request();
    r.kind = RequestKind::StoreArray;
    r.start = base;
    r.values = scriptKeys(17);
    reqs.push_back(r);

    r = Request();
    r.kind = RequestKind::Init;
    r.start = base;
    r.end = base + kRangeBytes;
    r.mode = KeyMode::UnsignedFixed;
    r.wordBits = 32;
    reqs.push_back(r);

    r = Request();
    r.kind = RequestKind::TopK;
    r.start = base;
    r.end = base + kRangeBytes;
    r.count = 5;
    reqs.push_back(r);

    r = Request();
    r.kind = RequestKind::Sort;
    r.start = base;
    r.end = base + kRangeBytes;
    reqs.push_back(r);

    r = Request();
    r.kind = RequestKind::Free;
    r.start = base;
    reqs.push_back(r);
    return reqs;
}

/** The deterministic Response fields (no ticks, no queue timings). */
void
expectSameResponse(const Response &got, const Response &want,
                   std::size_t op)
{
    SCOPED_TRACE("op " + std::to_string(op));
    EXPECT_EQ(got.status, want.status);
    EXPECT_EQ(got.addr, want.addr);
    ASSERT_EQ(got.items.size(), want.items.size());
    for (std::size_t i = 0; i < got.items.size(); ++i) {
        EXPECT_EQ(got.items[i].raw, want.items[i].raw);
        EXPECT_EQ(got.items[i].index, want.items[i].index);
    }
}

/** Run the script in-process and collect every Response. */
std::vector<Response>
runInProcess(ServiceConfig cfg)
{
    RimeService svc(std::move(cfg));
    auto s = svc.openSession(SessionConfig{});
    std::vector<Response> out;
    Addr base = 0;
    // First the Malloc (to learn the base), then the rest.
    {
        Request r;
        r.kind = RequestKind::Malloc;
        r.bytes = kRangeBytes;
        out.push_back(s->call(std::move(r)));
        base = out.back().addr;
    }
    auto reqs = scriptRequests(base);
    for (std::size_t i = 1; i < reqs.size(); ++i)
        out.push_back(s->call(std::move(reqs[i])));
    s->close();
    return out;
}

/** Run the script through a RimeClient and collect every Response. */
std::vector<Response>
runOverWire(RimeClient &client)
{
    const std::uint64_t session = client.openSession("tenant");
    EXPECT_NE(session, 0u);
    std::vector<Response> out;
    Addr base = 0;
    {
        Request r;
        r.kind = RequestKind::Malloc;
        r.bytes = kRangeBytes;
        out.push_back(client.call(session, std::move(r)));
        base = out.back().addr;
    }
    auto reqs = scriptRequests(base);
    for (std::size_t i = 1; i < reqs.size(); ++i)
        out.push_back(client.call(session, std::move(reqs[i])));
    EXPECT_TRUE(client.closeSession(session));
    return out;
}

/** Scoped temp dir for Unix socket paths. */
struct TempDir
{
    std::string dir;
    TempDir()
    {
        std::string tmpl = "/tmp/rime_wire_XXXXXX";
        const char *d = ::mkdtemp(tmpl.data());
        EXPECT_NE(d, nullptr);
        dir = d ? d : "";
    }
    ~TempDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(dir, ec);
    }
};

/**
 * Blockingly read one complete frame off a raw connected socket.
 * Returns Ok/Corrupt per readFrame, or Truncated when the peer closed
 * (or `timeout_ms` elapsed) before a full frame arrived.
 */
FrameStatus
readOneFrame(int fd, std::vector<std::uint8_t> &payload,
             int timeout_ms = 5000)
{
    std::vector<std::uint8_t> in;
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
        std::size_t offset = 0;
        const FrameStatus status =
            readFrame(in.data(), in.size(), offset, payload);
        if (status == FrameStatus::Ok || status == FrameStatus::Corrupt)
            return status;
        char buf[4096];
        const ssize_t got = ::recv(fd, buf, sizeof(buf), 0);
        if (got == 0)
            return FrameStatus::Truncated; // peer closed mid-frame
        if (got < 0) {
            if (errno == EINTR)
                continue;
            return FrameStatus::Truncated;
        }
        in.insert(in.end(), buf, buf + got);
    }
    return FrameStatus::Truncated;
}

std::vector<std::uint8_t>
encodedHello()
{
    wire::Message hello;
    hello.kind = wire::MessageKind::Hello;
    hello.corrId = 7;
    std::vector<std::uint8_t> framed;
    wire::encodeMessage(framed, hello);
    return framed;
}

} // namespace

// ---------------------------------------------------------------------
// Codec round trips.
// ---------------------------------------------------------------------

TEST(WireCodec, MessageKindsRoundTrip)
{
    std::vector<wire::Message> msgs;

    wire::Message m;
    m.kind = wire::MessageKind::Hello;
    m.corrId = 1;
    msgs.push_back(m);

    m = wire::Message();
    m.kind = wire::MessageKind::Welcome;
    m.corrId = 1;
    m.shards = 4;
    msgs.push_back(m);

    m = wire::Message();
    m.kind = wire::MessageKind::OpenSession;
    m.corrId = 2;
    m.tenant = "alpha";
    m.weight = 3;
    m.maxInFlight = 16;
    msgs.push_back(m);

    m = wire::Message();
    m.kind = wire::MessageKind::SessionOpened;
    m.corrId = 2;
    m.sessionId = 42;
    m.status = ServiceStatus::Ok;
    msgs.push_back(m);

    m = wire::Message();
    m.kind = wire::MessageKind::Request;
    m.corrId = 3;
    m.sessionId = 42;
    m.req.kind = RequestKind::TopK;
    m.req.start = 0x1000;
    m.req.end = 0x10C0;
    m.req.count = 5;
    m.req.largest = true;
    msgs.push_back(m);

    m = wire::Message();
    m.kind = wire::MessageKind::Response;
    m.corrId = 3;
    m.resp.status = ServiceStatus::Ok;
    m.resp.items = {{123, 4}, {456, 7}};
    m.resp.shardTick = 99;
    msgs.push_back(m);

    m = wire::Message();
    m.kind = wire::MessageKind::StatDump;
    m.corrId = 4;
    m.includeHost = true;
    msgs.push_back(m);

    m = wire::Message();
    m.kind = wire::MessageKind::StatDumpReply;
    m.corrId = 4;
    m.text = "{\"a\": 1}";
    msgs.push_back(m);

    m = wire::Message();
    m.kind = wire::MessageKind::Error;
    m.corrId = 0;
    m.error = wire::WireError::BadFrame;
    m.text = "checksum mismatch";
    msgs.push_back(m);

    for (const auto &msg : msgs) {
        SCOPED_TRACE(wire::messageKindName(msg.kind));
        std::vector<std::uint8_t> framed;
        wire::encodeMessage(framed, msg);
        std::size_t offset = 0;
        std::vector<std::uint8_t> payload;
        ASSERT_EQ(readFrame(framed.data(), framed.size(), offset,
                            payload),
                  FrameStatus::Ok);
        EXPECT_EQ(offset, framed.size());
        wire::Message back;
        ASSERT_TRUE(wire::decodeMessage(payload, back));
        EXPECT_EQ(back.kind, msg.kind);
        EXPECT_EQ(back.corrId, msg.corrId);
        EXPECT_EQ(back.sessionId, msg.sessionId);
        EXPECT_EQ(back.tenant, msg.tenant);
        EXPECT_EQ(back.text, msg.text);
        EXPECT_EQ(back.error, msg.error);
        EXPECT_EQ(back.req.kind, msg.req.kind);
        EXPECT_EQ(back.req.count, msg.req.count);
        EXPECT_EQ(back.req.largest, msg.req.largest);
        ASSERT_EQ(back.resp.items.size(), msg.resp.items.size());
        for (std::size_t i = 0; i < msg.resp.items.size(); ++i) {
            EXPECT_EQ(back.resp.items[i].raw, msg.resp.items[i].raw);
            EXPECT_EQ(back.resp.items[i].index,
                      msg.resp.items[i].index);
        }
    }
}

// ---------------------------------------------------------------------
// A remote client is indistinguishable from an in-process session.
// ---------------------------------------------------------------------

TEST(WireSession, FullScriptOverTcpMatchesInProcess)
{
    const std::vector<Response> want = runInProcess(ServiceConfig{});

    RimeService svc{ServiceConfig{}};
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    ASSERT_TRUE(server.start());
    ASSERT_NE(server.tcpPort(), 0);

    ClientConfig ccfg;
    ccfg.endpoint =
        "tcp:127.0.0.1:" + std::to_string(server.tcpPort());
    RimeClient client(ccfg);
    ASSERT_TRUE(client.connect());
    EXPECT_EQ(client.shards(), 1u);

    const std::vector<Response> got = runOverWire(client);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameResponse(got[i], want[i], i);
    EXPECT_EQ(client.protocolErrors(), 0u);
    EXPECT_EQ(server.protocolErrors(), 0u);
    EXPECT_GE(server.requestsServed(), 6u);

    client.disconnect();
    server.stop();
}

TEST(WireSession, FullScriptOverUnixMatchesInProcess)
{
    const std::vector<Response> want = runInProcess(ServiceConfig{});

    TempDir tmp;
    const std::string path = tmp.dir + "/rime.sock";
    RimeService svc{ServiceConfig{}};
    RimeServer server(svc, {.unixPath = "unix:" + path});
    ASSERT_TRUE(server.start());
    EXPECT_EQ(server.unixSocketPath(), path);

    RimeClient client({.endpoint = "unix:" + path});
    ASSERT_TRUE(client.connect());

    const std::vector<Response> got = runOverWire(client);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i)
        expectSameResponse(got[i], want[i], i);
    EXPECT_EQ(client.protocolErrors(), 0u);
    EXPECT_EQ(server.protocolErrors(), 0u);

    client.disconnect();
    server.stop();
    EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(WireSession, PipelinedWindowCompletesEveryFuture)
{
    RimeService svc{ServiceConfig{}};
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    ASSERT_TRUE(server.start());

    RimeClient client(
        {.endpoint =
             "tcp:127.0.0.1:" + std::to_string(server.tcpPort())});
    ASSERT_TRUE(client.connect());
    const std::uint64_t session =
        client.openSession("pipeline", 1, /*max_in_flight=*/8);
    ASSERT_NE(session, 0u);

    Request r;
    r.kind = RequestKind::Malloc;
    r.bytes = kRangeBytes;
    const Response malloced = client.call(session, std::move(r));
    ASSERT_TRUE(malloced.ok());
    const Addr base = malloced.addr;

    auto keys = scriptKeys(23);
    r = Request();
    r.kind = RequestKind::StoreArray;
    r.start = base;
    r.values = keys;
    ASSERT_TRUE(client.call(session, std::move(r)).ok());
    r = Request();
    r.kind = RequestKind::Init;
    r.start = base;
    r.end = base + kRangeBytes;
    r.mode = KeyMode::UnsignedFixed;
    r.wordBits = 32;
    ASSERT_TRUE(client.call(session, std::move(r)).ok());
    std::sort(keys.begin(), keys.end());

    // A depth-8 pipelined window of Min extractions: every future
    // completes, in submission order, with the next ascending key.
    constexpr std::size_t kDepth = 8;
    constexpr std::size_t kTotal = 32;
    std::vector<std::future<Response>> window;
    std::size_t submitted = 0, consumed = 0;
    while (consumed < kTotal) {
        while (submitted < kTotal && window.size() < kDepth) {
            Request m;
            m.kind = RequestKind::Min;
            m.start = base;
            m.end = base + kRangeBytes;
            window.push_back(client.submit(session, std::move(m)));
            ++submitted;
        }
        const Response resp = window.front().get();
        window.erase(window.begin());
        ASSERT_TRUE(resp.ok()) << "extraction " << consumed;
        ASSERT_EQ(resp.items.size(), 1u);
        EXPECT_EQ(resp.items[0].raw, keys[consumed]);
        ++consumed;
    }

    EXPECT_TRUE(client.closeSession(session));
    EXPECT_EQ(client.protocolErrors(), 0u);
    EXPECT_EQ(client.transportErrors(), 0u);
    client.disconnect();
    server.stop();
}

// ---------------------------------------------------------------------
// Lockstep determinism survives the wire: the stat dump of a remote
// run is bit-identical to the same script served in-process.
// ---------------------------------------------------------------------

TEST(WireSession, LockstepStatDumpBitIdenticalToInProcess)
{
    ServiceConfig det;
    det.scheduler.deterministic = true;
    std::string want;
    {
        RimeService svc(std::move(det));
        auto s = svc.openSession(SessionConfig{});
        svc.start();
        Addr base = 0;
        {
            Request r;
            r.kind = RequestKind::Malloc;
            r.bytes = kRangeBytes;
            const Response resp = s->call(std::move(r));
            base = resp.addr;
        }
        auto reqs = scriptRequests(base);
        for (std::size_t i = 1; i < reqs.size(); ++i)
            s->call(std::move(reqs[i]));
        s->close();
        want = svc.statDumpJson(false);
    }

    ServiceConfig det2;
    det2.scheduler.deterministic = true;
    RimeService svc{std::move(det2)};
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    ASSERT_TRUE(server.start());
    RimeClient client(
        {.endpoint =
             "tcp:127.0.0.1:" + std::to_string(server.tcpPort())});
    ASSERT_TRUE(client.connect());

    const std::uint64_t session = client.openSession("tenant");
    ASSERT_NE(session, 0u);
    ASSERT_TRUE(client.start());
    Addr base = 0;
    {
        Request r;
        r.kind = RequestKind::Malloc;
        r.bytes = kRangeBytes;
        base = client.call(session, std::move(r)).addr;
    }
    auto reqs = scriptRequests(base);
    for (std::size_t i = 1; i < reqs.size(); ++i)
        client.call(session, std::move(reqs[i]));
    ASSERT_TRUE(client.closeSession(session));

    const std::string got = client.statDump(false);
    EXPECT_FALSE(got.empty());
    EXPECT_EQ(got, want)
        << "wire-served stat dump diverged from in-process";

    client.disconnect();
    server.stop();
}

// ---------------------------------------------------------------------
// Protocol robustness against a raw socket.
// ---------------------------------------------------------------------

TEST(WireProtocol, HelloDeliveredOneByteAtATimeStillWelcomes)
{
    RimeService svc{ServiceConfig{}};
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    ASSERT_TRUE(server.start());
    Endpoint ep;
    ASSERT_TRUE(parseEndpoint(
        "tcp:127.0.0.1:" + std::to_string(server.tcpPort()), ep));

    const std::vector<std::uint8_t> framed = encodedHello();

    // Cut the frame at every byte boundary: the server must treat the
    // partial frame as Truncated (wait), then answer the completed
    // frame with a Welcome -- exactly once, on every cut.
    for (std::size_t cut = 0; cut <= framed.size(); ++cut) {
        SCOPED_TRACE("cut at byte " + std::to_string(cut));
        const int fd = connectSocket(ep, 2000);
        ASSERT_GE(fd, 0);
        if (cut > 0)
            ASSERT_TRUE(writeFully(fd, framed.data(), cut));
        // Give the event loop a chance to see (and park) the prefix.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        if (cut < framed.size()) {
            ASSERT_TRUE(writeFully(fd, framed.data() + cut,
                                   framed.size() - cut));
        }
        std::vector<std::uint8_t> payload;
        ASSERT_EQ(readOneFrame(fd, payload), FrameStatus::Ok);
        wire::Message welcome;
        ASSERT_TRUE(wire::decodeMessage(payload, welcome));
        EXPECT_EQ(welcome.kind, wire::MessageKind::Welcome);
        EXPECT_EQ(welcome.corrId, 7u);
        EXPECT_EQ(welcome.magic, wire::kWireMagic);
        ::close(fd);
    }
    EXPECT_EQ(server.protocolErrors(), 0u);
    server.stop();
}

TEST(WireProtocol, FlippedBitIsAnErrorReplyNeverUB)
{
    RimeService svc{ServiceConfig{}};
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    ASSERT_TRUE(server.start());
    Endpoint ep;
    ASSERT_TRUE(parseEndpoint(
        "tcp:127.0.0.1:" + std::to_string(server.tcpPort()), ep));

    const std::vector<std::uint8_t> framed = encodedHello();
    std::uint64_t expectErrors = 0;

    // Flip every bit of the CRC word and the payload in turn (the
    // length word is exercised separately below: a huge length is
    // "wait for more bytes", not provably corrupt).  Each flip must
    // produce a wire Error (or an immediate close) -- never a Welcome,
    // never a hang, never UB.
    for (std::size_t bit = 4 * 8; bit < framed.size() * 8; ++bit) {
        SCOPED_TRACE("flipped bit " + std::to_string(bit));
        std::vector<std::uint8_t> bad = framed;
        bad[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
        const int fd = connectSocket(ep, 2000);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeFully(fd, bad.data(), bad.size()));
        std::vector<std::uint8_t> payload;
        const FrameStatus status = readOneFrame(fd, payload);
        if (status == FrameStatus::Ok) {
            wire::Message reply;
            ASSERT_TRUE(wire::decodeMessage(payload, reply));
            EXPECT_EQ(reply.kind, wire::MessageKind::Error)
                << "server answered a corrupted Hello with "
                << wire::messageKindName(reply.kind);
        } else {
            // The server closed before the Error flushed; fine too.
            EXPECT_EQ(status, FrameStatus::Truncated);
        }
        ++expectErrors;
        ::close(fd);
    }

    // An absurd length prefix must be rejected outright.
    {
        std::vector<std::uint8_t> absurd(8, 0xFF);
        const int fd = connectSocket(ep, 2000);
        ASSERT_GE(fd, 0);
        ASSERT_TRUE(writeFully(fd, absurd.data(), absurd.size()));
        std::vector<std::uint8_t> payload;
        const FrameStatus status = readOneFrame(fd, payload);
        if (status == FrameStatus::Ok) {
            wire::Message reply;
            ASSERT_TRUE(wire::decodeMessage(payload, reply));
            EXPECT_EQ(reply.kind, wire::MessageKind::Error);
        }
        ++expectErrors;
        ::close(fd);
    }

    // Every corrupted connection was counted, and the server is still
    // healthy enough to serve a clean client.
    const auto deadline = std::chrono::steady_clock::now() +
        std::chrono::seconds(5);
    while (server.protocolErrors() < expectErrors &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(server.protocolErrors(), expectErrors);

    RimeClient client(
        {.endpoint =
             "tcp:127.0.0.1:" + std::to_string(server.tcpPort())});
    ASSERT_TRUE(client.connect());
    const std::uint64_t session = client.openSession("survivor");
    EXPECT_NE(session, 0u);
    EXPECT_TRUE(client.closeSession(session));
    client.disconnect();
    server.stop();
}

TEST(WireProtocol, UnknownSessionFailsTheConnectionNotTheServer)
{
    RimeService svc{ServiceConfig{}};
    RimeServer server(svc, {.tcp = "tcp:127.0.0.1:0"});
    ASSERT_TRUE(server.start());

    RimeClient client(
        {.endpoint =
             "tcp:127.0.0.1:" + std::to_string(server.tcpPort())});
    ASSERT_TRUE(client.connect());

    Request r;
    r.kind = RequestKind::Health;
    const Response resp = client.call(9999, std::move(r));
    // The server answers Error(UnknownSession) and drops the
    // connection; the pending future completes Closed.
    EXPECT_EQ(resp.status, ServiceStatus::Closed);
    EXPECT_GE(client.protocolErrors() + client.transportErrors(), 1u);

    // A fresh connection with a real session still works.
    ASSERT_TRUE(client.connect());
    const std::uint64_t session = client.openSession("tenant");
    ASSERT_NE(session, 0u);
    Request h;
    h.kind = RequestKind::Health;
    EXPECT_TRUE(client.call(session, std::move(h)).ok());
    EXPECT_TRUE(client.closeSession(session));
    client.disconnect();
    server.stop();
}

// ---------------------------------------------------------------------
// Reconnect-after-restart: transport errors, never protocol errors.
// ---------------------------------------------------------------------

TEST(WireClient, ReconnectAfterServerRestart)
{
    TempDir tmp;
    const std::string path = tmp.dir + "/rime.sock";

    RimeClient client({.endpoint = "unix:" + path,
                       .connectTimeoutMs = 500,
                       .connectAttempts = 3,
                       .backoffBaseMs = 5});

    RimeService svc1{ServiceConfig{}};
    auto server1 = std::make_unique<RimeServer>(
        svc1, ServerConfig{.unixPath = "unix:" + path});
    ASSERT_TRUE(server1->start());
    ASSERT_TRUE(client.connect());
    std::uint64_t session = client.openSession("tenant");
    ASSERT_NE(session, 0u);
    Request r;
    r.kind = RequestKind::Malloc;
    r.bytes = kRangeBytes;
    ASSERT_TRUE(client.call(session, std::move(r)).ok());

    // Kill the server: in-flight and later submissions fail as
    // *transport* errors (status Closed), never silently retried.
    server1->stop();
    server1.reset();
    Request dead;
    dead.kind = RequestKind::Health;
    const Response failed = client.call(session, std::move(dead));
    EXPECT_EQ(failed.status, ServiceStatus::Closed);
    EXPECT_GE(client.transportErrors(), 1u);
    EXPECT_FALSE(client.connected());

    // A new server on the same endpoint: connect() succeeds (counting
    // a reconnect), sessions are reopened, and the session serves.
    RimeService svc2{ServiceConfig{}};
    RimeServer server2(svc2, {.unixPath = "unix:" + path});
    ASSERT_TRUE(server2.start());
    ASSERT_TRUE(client.connect());
    EXPECT_EQ(client.reconnects(), 1u);
    session = client.openSession("tenant");
    ASSERT_NE(session, 0u);
    Request again;
    again.kind = RequestKind::Malloc;
    again.bytes = kRangeBytes;
    EXPECT_TRUE(client.call(session, std::move(again)).ok());
    EXPECT_TRUE(client.closeSession(session));
    EXPECT_EQ(client.protocolErrors(), 0u);

    client.disconnect();
    server2.stop();
}

TEST(WireClient, ConnectToNothingFailsAfterBoundedBackoff)
{
    RimeClient client({.endpoint = "unix:/tmp/rime_wire_nothing.sock",
                       .connectTimeoutMs = 200,
                       .connectAttempts = 3,
                       .backoffBaseMs = 1,
                       .backoffMaxMs = 4});
    const auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(client.connect());
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    EXPECT_LT(elapsed, std::chrono::seconds(5));
    EXPECT_FALSE(client.connected());
}

// ---------------------------------------------------------------------
// Disconnect mid-pipeline: every in-flight future completes Closed.
// ---------------------------------------------------------------------

TEST(WireClient, ServerStopCompletesInFlightFuturesClosed)
{
    RimeService svc{ServiceConfig{}};
    auto server = std::make_unique<RimeServer>(
        svc, ServerConfig{.tcp = "tcp:127.0.0.1:0"});
    ASSERT_TRUE(server->start());
    RimeClient client(
        {.endpoint =
             "tcp:127.0.0.1:" + std::to_string(server->tcpPort())});
    ASSERT_TRUE(client.connect());
    const std::uint64_t session =
        client.openSession("tenant", 1, /*max_in_flight=*/32);
    ASSERT_NE(session, 0u);

    // Pipeline a burst, then stop the server under it.
    std::vector<std::future<Response>> inflight;
    for (int i = 0; i < 16; ++i) {
        Request r;
        r.kind = RequestKind::Health;
        inflight.push_back(client.submit(session, std::move(r)));
    }
    server->stop();
    server.reset();

    // Every future completes -- Ok if its reply raced the stop out,
    // Closed otherwise.  None hang, none are dropped.
    for (auto &f : inflight) {
        ASSERT_EQ(f.wait_for(std::chrono::seconds(10)),
                  std::future_status::ready);
        const Response resp = f.get();
        EXPECT_TRUE(resp.status == ServiceStatus::Ok ||
                    resp.status == ServiceStatus::Closed);
    }
    EXPECT_EQ(client.protocolErrors(), 0u);
    client.disconnect();
}
